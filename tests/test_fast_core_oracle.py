"""Differential oracle: the fast core must match the python core exactly.

The fast core (``REPRO_CORE=fast`` / ``SystemConfig.core``) swaps in the
calendar-queue scheduler, the inlined SM frontend and the flat-array
memory datapath -- but its contract is *byte identity*: every statistic
of every scenario must equal the pure-Python oracle's, field for field.
This test runs the full fig6.x fast-size scenario set plus the five
fleet workloads under both cores in one process (``SystemConfig.core``
pins a single system regardless of the environment) and diffs:

* the serialized result (``SimResult.to_dict()``: cycles, instructions,
  the stall breakdown, per-SM breakdowns, the frozen stats schema), and
* the complete flattened component stats tree -- every counter,
  histogram and derived stat of every component in the machine, which is
  strictly stronger than the artifact schema and catches divergence in
  parts no figure renders (engine event/wakeup counts, mesh slot
  accounting, per-bank L2 counters, ...).

Any mismatch here means a fast-path rewrite changed simulation order or
dropped a side effect; fix the fast core, never the oracle.
"""

from __future__ import annotations

import pytest

from repro.experiments.campaign import DEFAULT_FLEET
from repro.experiments.figures import _implicit_grid, _uts_protocol_grid
from repro.experiments.spec import Scenario, Sweep
from repro.system import run_workload


def _fig6x_fast_scenarios() -> list[Scenario]:
    """The scenario grids of the fig6.x artifacts at --fast sizes
    (the sizes CI's identity gate regenerates the goldens with)."""
    scenarios: list[Scenario] = []
    for sc in _uts_protocol_grid("uts", 60, 4):
        scenarios.append(Scenario("fig6.1/" + sc.name, sc.workload,
                                  sc.workload_args, sc.config))
    for sc in _uts_protocol_grid("utsd", 60, 4):
        scenarios.append(Scenario("fig6.2/" + sc.name, sc.workload,
                                  sc.workload_args, sc.config))
    for sc in _implicit_grid(2, 8):
        scenarios.append(Scenario("fig6.3/" + sc.name, sc.workload,
                                  sc.workload_args, sc.config))
    mshr_axis = [{"mshr_entries": s, "store_buffer_entries": s} for s in (32, 256)]
    for base in _implicit_grid(2, 8):
        for sc in Sweep(base, {"mshr_entries": mshr_axis}).expand():
            scenarios.append(Scenario("fig6.4/" + sc.name, sc.workload,
                                      sc.workload_args, sc.config))
    return scenarios


def _fleet_fast_scenarios() -> list[Scenario]:
    """The five fleet workloads at their campaign fast sizes."""
    return [
        Scenario("fleet/" + label, workload, dict(fast_args), dict(config))
        for label, workload, _full, fast_args, config in DEFAULT_FLEET
    ]


SCENARIOS = _fig6x_fast_scenarios() + _fleet_fast_scenarios()


@pytest.mark.parametrize("scenario", SCENARIOS, ids=[s.name for s in SCENARIOS])
def test_fast_core_matches_python_oracle(scenario: Scenario) -> None:
    outcome = {}
    for core in ("python", "fast"):
        config = scenario.build_config().scaled(core=core)
        result = run_workload(config, scenario.build_workload())
        outcome[core] = (result.to_dict(), result.stats_tree.flatten())
    py_dict, py_tree = outcome["python"]
    fast_dict, fast_tree = outcome["fast"]
    assert fast_dict == py_dict, "serialized SimResult diverged from oracle"
    assert fast_tree == py_tree, "component stats tree diverged from oracle"
