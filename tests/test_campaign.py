"""Tests for the campaign subsystem: spec validation and expansion, the
executor-backed runner (resume-from-cache), matrix rendering, CSV/JSON
round-trips, artifact writing, and the ``repro campaign`` CLI."""

import csv
import io
import json

import pytest

from repro import cli
from repro.experiments.campaign import (
    PROTOCOLS,
    CampaignSpec,
    default_campaign,
    load_campaign,
    run_campaign,
    write_artifacts,
)

#: a tiny two-workload campaign that simulates in well under a second
TINY = {
    "name": "tiny",
    "workloads": [
        {"name": "hist", "workload": "histogram",
         "workload_args": {"elements_per_warp": 4}, "config": {"num_sms": 2}},
        {"name": "gups", "workload": "gups",
         "workload_args": {"updates_per_warp": 8}, "config": {"num_sms": 2}},
    ],
    "hierarchies": {"default": None},
    "protocols": ["gpu", "denovo"],
}


def tiny_spec() -> CampaignSpec:
    return CampaignSpec.from_dict(json.loads(json.dumps(TINY)))


class TestSpec:
    def test_shape_and_names(self):
        spec = tiny_spec()
        scenarios = spec.scenarios()
        assert spec.shape() == (2, 1, 2)
        assert len(scenarios) == 4
        assert [s.name for s in scenarios] == [
            "hist/default/gpu", "hist/default/denovo",
            "gups/default/gpu", "gups/default/denovo",
        ]

    def test_per_workload_config_and_protocol_reach_cells(self):
        for s in tiny_spec().scenarios():
            assert s.config["num_sms"] == 2
            assert s.config["protocol"] in PROTOCOLS

    def test_base_config_beneath_per_workload_overrides(self):
        spec = tiny_spec()
        spec.config = {"num_sms": 8, "mshr_entries": 16}
        cell = spec.scenarios()[0]
        assert cell.config["num_sms"] == 2      # per-workload wins
        assert cell.config["mshr_entries"] == 16  # base fills the rest

    def test_hierarchy_reaches_cells(self):
        from repro.mem.hierarchy import example_shapes

        spec = tiny_spec()
        spec.hierarchies = {"shared-l3": example_shapes()["shared-l3"]}
        for s in spec.scenarios():
            assert s.config["hierarchy"]["label"] == "shared-l3"

    def test_round_trip(self):
        spec = tiny_spec()
        assert CampaignSpec.from_dict(spec.to_dict()).to_dict() == spec.to_dict()

    @pytest.mark.parametrize("mutate,match", [
        (lambda d: d.update(workloads=[]), "no workloads"),
        (lambda d: d.update(hierarchies={}), "no hierarchies"),
        (lambda d: d.update(protocols=[]), "no protocols"),
        (lambda d: d.update(protocols=["mesi"]), "unknown protocol"),
        (lambda d: d.update(workloads=[{"name": "x"}]), "needs a 'workload'"),
        (lambda d: d.update(workloads=TINY["workloads"][:1] * 2), "duplicate"),
        (lambda d: d.update(surprise=1), "unknown campaign field"),
    ])
    def test_invalid_specs_rejected(self, mutate, match):
        data = json.loads(json.dumps(TINY))
        mutate(data)
        with pytest.raises(ValueError, match=match):
            CampaignSpec.from_dict(data).scenarios()

    def test_subset_filters(self):
        spec = tiny_spec().subset(workloads=["hist"], protocols=["denovo"])
        assert [s.name for s in spec.scenarios()] == ["hist/default/denovo"]

    def test_slash_in_labels_rejected(self):
        data = json.loads(json.dumps(TINY))
        data["hierarchies"] = {"l3/fast": None}
        with pytest.raises(ValueError, match="must not contain"):
            CampaignSpec.from_dict(data).scenarios()
        data = json.loads(json.dumps(TINY))
        data["workloads"][0]["name"] = "a/b"
        with pytest.raises(ValueError, match="must not contain"):
            CampaignSpec.from_dict(data).scenarios()

    def test_subset_suggests_close_matches(self):
        with pytest.raises(ValueError, match="did you mean hist"):
            tiny_spec().subset(workloads=["hists"])
        with pytest.raises(ValueError, match="unknown protocol"):
            tiny_spec().subset(protocols=["numa"])

    def test_default_campaign_is_at_least_5x2x2(self):
        for fast in (False, True):
            w, h, p = default_campaign(fast).shape()
            assert w >= 5 and h >= 2 and p == 2

    def test_default_campaign_cells_validate(self):
        for s in default_campaign(fast=True).scenarios():
            s.validate()


class TestRunner:
    def test_matrix_shape_and_render(self):
        result = run_campaign(tiny_spec())
        assert len(result.records) == 4
        rows = result.matrix_rows()
        assert {(r["workload"], r["protocol"]) for r in rows} == {
            ("hist", "gpu"), ("hist", "denovo"),
            ("gups", "gpu"), ("gups", "denovo"),
        }
        text = result.render()
        assert "2 workloads x 1 hierarchies x 2 protocols" in text
        assert "hist" in text and "gups" in text

    def test_resume_from_cache(self, tmp_path):
        cache = str(tmp_path / "cache")
        first = run_campaign(tiny_spec(), cache_dir=cache)
        assert not first.fully_cached
        second = run_campaign(tiny_spec(), jobs=2, cache_dir=cache)
        assert second.fully_cached
        assert second.cached_count == len(second.records) == 4
        # cache-served results are byte-identical to fresh ones
        def stable(result):
            cells = {
                name: dict(cell, cached=None, elapsed_s=None)
                for name, cell in result.to_dict()["cells"].items()
            }
            return json.dumps(cells, sort_keys=True)

        assert stable(first) == stable(second)

    def test_json_round_trip(self):
        result = run_campaign(tiny_spec())
        payload = json.loads(json.dumps(result.to_dict(), sort_keys=True))
        assert len(payload["cells"]) == 4
        for cell in payload["cells"].values():
            assert cell["cycles"] > 0
            assert abs(sum(cell["attribution"].values()) - 1.0) < 1e-9
        assert CampaignSpec.from_dict(payload["campaign"]).shape() == (2, 1, 2)

    def test_csv_round_trip(self):
        result = run_campaign(tiny_spec())
        rows = list(csv.DictReader(io.StringIO(result.to_csv())))
        per_cell = len(result.records[0].result.breakdown.rows())
        assert len(rows) == 4 * per_cell
        # cycles survive the text round trip exactly
        for record in result.records:
            workload, hierarchy, protocol = record.scenario.name.split("/")
            got = {
                r["category"]: int(r["cycles"])
                for r in rows
                if (r["workload"], r["hierarchy"], r["protocol"])
                == (workload, hierarchy, protocol)
            }
            assert got == dict(record.result.breakdown.rows())

    def test_write_artifacts(self, tmp_path):
        result = run_campaign(tiny_spec())
        paths = write_artifacts(result, str(tmp_path))
        assert [p.rsplit(".", 1)[1] for p in paths] == ["txt", "json", "csv"]
        data = json.loads((tmp_path / "tiny.json").read_text())
        assert len(data["cells"]) == 4


class TestCli:
    def _spec_file(self, tmp_path) -> str:
        path = tmp_path / "tiny.json"
        path.write_text(json.dumps(TINY))
        return str(path)

    def test_campaign_text(self, tmp_path, capsys):
        assert cli.main(["campaign", "--spec", self._spec_file(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "stall-attribution matrix" in out

    def test_campaign_json_and_out(self, tmp_path, capsys):
        rc = cli.main([
            "campaign", "--spec", self._spec_file(tmp_path),
            "--format", "json", "--out", str(tmp_path / "artifacts"),
            "--jobs", "2", "--cache", str(tmp_path / "cache"),
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["cells"]) == 4
        assert (tmp_path / "artifacts" / "tiny.csv").exists()

    def test_campaign_subset_and_errors(self, tmp_path, capsys):
        spec = self._spec_file(tmp_path)
        assert cli.main(["campaign", "--spec", spec, "--workloads", "hist",
                         "--protocols", "gpu"]) == 0
        assert "1 workloads x 1 hierarchies x 1 protocols" in capsys.readouterr().out
        assert cli.main(["campaign", "--spec", spec, "--workloads", "nope"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_campaign_missing_spec_file(self, capsys):
        assert cli.main(["campaign", "--spec", "/nonexistent.json"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_fast_with_spec_rejected(self, tmp_path, capsys):
        rc = cli.main(["campaign", "--spec", self._spec_file(tmp_path), "--fast"])
        assert rc == 2
        assert "--fast" in capsys.readouterr().err

    def test_unwritable_out_dir_is_clean_error(self, tmp_path, capsys):
        blocker = tmp_path / "file"
        blocker.write_text("")
        rc = cli.main(["campaign", "--spec", self._spec_file(tmp_path),
                       "--out", str(blocker / "sub")])
        assert rc == 2
        assert "cannot write artifacts" in capsys.readouterr().err


class TestLoadCampaign:
    def test_load_and_run(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text(json.dumps(TINY))
        spec = load_campaign(str(path))
        assert spec.shape() == (2, 1, 2)

    def test_non_object_rejected(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text(json.dumps([1, 2]))
        with pytest.raises(ValueError, match="campaign spec object"):
            load_campaign(str(path))
