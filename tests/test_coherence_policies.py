"""Unit tests for the coherence policy objects themselves."""

import pytest

from repro.mem.cache import LineState, SetAssocCache
from repro.mem.coherence import make_protocol
from repro.mem.coherence.denovo import DeNovoCoherence
from repro.mem.coherence.gpu_coherence import GpuCoherence
from repro.noc.message import MsgType
from repro.sim.config import Protocol


class TestGpuCoherencePolicy:
    def setup_method(self):
        self.proto = GpuCoherence()
        self.l1 = SetAssocCache(4, 2)

    def test_acquire_drops_everything(self):
        assert not self.proto.keeps_owned_on_acquire()

    def test_stores_never_local(self):
        self.l1.insert(0x10, LineState.VALID)
        assert not self.proto.store_completes_locally(self.l1, 0x10)

    def test_drains_as_write_through(self):
        assert self.proto.drain_message_type() is MsgType.PUT_WT

    def test_no_allocate_on_store_ack(self):
        assert self.proto.state_after_store_ack() is None

    def test_no_eviction_writeback(self):
        assert not self.proto.needs_eviction_writeback(LineState.VALID)


class TestDeNovoPolicy:
    def setup_method(self):
        self.proto = DeNovoCoherence()
        self.l1 = SetAssocCache(4, 2)

    def test_acquire_keeps_owned(self):
        assert self.proto.keeps_owned_on_acquire()

    def test_store_local_only_when_owned(self):
        self.l1.insert(0x10, LineState.VALID)
        assert not self.proto.store_completes_locally(self.l1, 0x10)
        self.l1.set_state(0x10, LineState.OWNED)
        assert self.proto.store_completes_locally(self.l1, 0x10)

    def test_drains_as_ownership_request(self):
        assert self.proto.drain_message_type() is MsgType.GETO

    def test_store_ack_installs_owned(self):
        assert self.proto.state_after_store_ack() is LineState.OWNED

    def test_owned_eviction_writes_back(self):
        assert self.proto.needs_eviction_writeback(LineState.OWNED)
        assert not self.proto.needs_eviction_writeback(LineState.VALID)


class TestFactory:
    def test_make_protocol(self):
        assert isinstance(make_protocol(Protocol.GPU_COHERENCE), GpuCoherence)
        assert isinstance(make_protocol(Protocol.DENOVO), DeNovoCoherence)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_protocol("mesi")  # type: ignore[arg-type]
