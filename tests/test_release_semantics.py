"""Integration tests for release/acquire ordering semantics.

The consistency contract the workloads rely on (data-race-free, Chapter 5):
a release write becomes visible only after all prior stores of its warp are
flushed, and an acquire self-invalidates so subsequent reads see released
data.  These tests watch the actual message order at the L2.
"""

import pytest

from repro.core.stall_types import MemStructCause, StallType
from repro.gpu.instruction import Instruction
from repro.gpu.kernel import uniform_grid
from repro.noc.message import MsgType
from repro.sim.config import Protocol, SystemConfig
from repro.system import System


def run_kernel(system, kernel):
    return system.run_kernel(kernel)


class TestReleaseOrdering:
    def test_release_write_performs_after_prior_stores(self):
        """The release EXCH must reach the L2 after the flushed PUT_WTs."""
        system = System(SystemConfig(num_sms=1))
        order = []
        original = system.l2._service

        def spy(msg):
            if msg.mtype in (MsgType.PUT_WT, MsgType.ATOMIC):
                order.append(msg.mtype)
            return original(msg)

        system.l2._service = spy

        def factory(tb, w):
            def program(ctx):
                yield Instruction.store([0x10_0000], value=1)
                yield Instruction.store([0x10_0040], value=2)
                yield Instruction.atomic_exch(0x20_0000, 0, release=True)

            return program

        run_kernel(system, uniform_grid("rel", 1, 1, factory))
        atomic_at = order.index(MsgType.ATOMIC)
        assert order[:atomic_at].count(MsgType.PUT_WT) == 2

    def test_releasing_warp_continues_past_the_unlock(self):
        """Fire-and-forget release: the warp issues younger non-memory work
        while its release is still in flight."""
        system = System(SystemConfig(num_sms=1))
        issue_cycles = []

        def factory(tb, w):
            def program(ctx):
                yield Instruction.store([0x10_0000], value=1)
                yield Instruction.atomic_exch(0x20_0000, 0, release=True)
                yield Instruction.alu(dst=1, tag="after")
                issue_cycles.append(system.engine.now)

            return program

        result = run_kernel(system, uniform_grid("rel", 1, 1, factory))
        # The ALU retired well before the release round trip (~40 cycles)
        # could have completed.
        assert issue_cycles[0] < 40
        assert result.cycles > issue_cycles[0]

    def test_pending_release_blocks_other_warps_memory_ops(self):
        """A second warp's load is rejected with PENDING_RELEASE while the
        first warp's release flush is in flight."""
        system = System(SystemConfig(num_sms=1))

        def factory(tb, w):
            def program(ctx):
                if w == 0:
                    for i in range(4):
                        yield Instruction.store([0x10_0000 + i * 64], value=i)
                    yield Instruction.atomic_exch(0x20_0000, 0, release=True)
                else:
                    yield Instruction.alu(dst=1)
                    for i in range(8):
                        yield Instruction.load([0x30_0000 + i * 64], dst=2)

            return program

        result = run_kernel(system, uniform_grid("rel", 1, 2, factory))
        assert result.breakdown.mem_struct[MemStructCause.PENDING_RELEASE] > 0

    def test_sfifo_lets_other_warps_through(self):
        system = System(SystemConfig(num_sms=1, sfifo_release=True))

        def factory(tb, w):
            def program(ctx):
                if w == 0:
                    for i in range(4):
                        yield Instruction.store([0x10_0000 + i * 64], value=i)
                    yield Instruction.atomic_exch(0x20_0000, 0, release=True)
                else:
                    yield Instruction.alu(dst=1)
                    for i in range(8):
                        yield Instruction.load([0x30_0000 + i * 64], dst=2)

            return program

        result = run_kernel(system, uniform_grid("rel", 1, 2, factory))
        assert result.breakdown.mem_struct[MemStructCause.PENDING_RELEASE] == 0


class TestAcquireSemantics:
    @pytest.mark.parametrize(
        "proto,survives",
        [(Protocol.GPU_COHERENCE, 0), (Protocol.DENOVO, 1)],
    )
    def test_acquire_invalidation_scope(self, proto, survives):
        """GPU coherence drops everything on acquire; DeNovo keeps owned
        lines.  Observed through the L1 occupancy after a CAS-acquire."""
        system = System(SystemConfig(num_sms=1, protocol=proto))
        occupancy = []

        def factory(tb, w):
            def program(ctx):
                yield Instruction.load([0x10_0000], dst=1)   # VALID line
                yield Instruction.store([0x10_0040], value=1)  # OWNED (DeNovo)
                old = yield Instruction.atomic_cas(0x20_0000, 0, 1, acquire=True)
                occupancy.append(len(system.sms[0].l1.cache.owned_lines()))

            return program

        run_kernel(system, uniform_grid("acq", 1, 1, factory))
        assert occupancy[0] == survives

    def test_acquire_waits_classified_sync(self):
        system = System(SystemConfig(num_sms=1))

        def factory(tb, w):
            def program(ctx):
                for _ in range(4):
                    yield Instruction.atomic_cas(0x20_0000, 1, 2, acquire=True)

            return program

        result = run_kernel(system, uniform_grid("acq", 1, 1, factory))
        assert result.breakdown.counts[StallType.SYNC] > 0
        # The acquire round trips dominate this kernel.
        assert result.breakdown.fraction(StallType.SYNC) > 0.5
