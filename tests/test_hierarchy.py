"""Tests for the declarative memory-hierarchy fabric.

Covers the spec types (validation with actionable messages), elaboration
(default spec == flat-field machine), the non-default shapes (shared L3,
private L2, L1 bypass, cluster sharing, victim level) end-to-end, the
eviction/writeback edge cases at both private and shared levels, and the
scenario cache-key treatment of hierarchy shapes.
"""

import pytest

from repro.core.stall_types import ServiceLocation
from repro.experiments.spec import Scenario, Sweep
from repro.mem.cache import LineState
from repro.mem.coherence.denovo import DeNovoCoherence
from repro.mem.coherence.gpu_coherence import GpuCoherence
from repro.mem.hierarchy import CacheLevelSpec, HierarchySpec, SharedCacheLevel
from repro.mem.l1 import L1Controller
from repro.mem.l2 import L2Cache
from repro.mem.main_memory import Dram, GlobalMemory
from repro.noc.mesh import Mesh
from repro.noc.message import MsgType
from repro.sim.config import SystemConfig
from repro.sim.engine import Engine
from repro.system import System, run_workload
from repro.workloads import make_workload

# ---------------------------------------------------------------------------
# Shape specs used across the tests (and mirrored by examples/ and CI)
# ---------------------------------------------------------------------------

L1 = {"name": "l1", "sharing": "private", "size": 32 * 1024, "assoc": 8,
      "banks": 8, "hit_latency": 1}
L2 = {"name": "l2", "sharing": "global", "size": 4 * 1024 * 1024, "assoc": 16,
      "banks": 16, "hit_latency": 23, "dir_latency": 8}

SHARED_L3 = {"label": "shared-l3", "levels": [
    dict(L1), dict(L2),
    {"name": "l3", "sharing": "global", "size": 8 * 1024 * 1024, "assoc": 16,
     "banks": 16, "hit_latency": 37, "dir_latency": 12},
]}
PRIVATE_L2 = {"label": "private-l2", "levels": [
    dict(L1),
    {"name": "l2p", "sharing": "private", "size": 256 * 1024, "assoc": 8,
     "hit_latency": 8},
    dict(L2, name="l3"),
]}
L1_BYPASS = {"label": "l1-bypass", "levels": [dict(L1, bypass=True), dict(L2)]}
CLUSTER_L2 = {"label": "cluster-l2", "levels": [
    dict(L1),
    {"name": "l2c", "sharing": "cluster", "cluster_size": 2,
     "size": 256 * 1024, "assoc": 8, "hit_latency": 10},
    dict(L2, name="l3"),
]}
VICTIM = {"label": "victim", "levels": [
    dict(L1, size=4096, assoc=2),
    {"name": "lv", "sharing": "private", "size": 8192, "assoc": 8,
     "hit_latency": 4, "victim": True},
    dict(L2),
]}

SHAPES = {
    "shared-l3": SHARED_L3,
    "private-l2": PRIVATE_L2,
    "l1-bypass": L1_BYPASS,
    "cluster-l2": CLUSTER_L2,
    "victim": VICTIM,
}


def _small_run(hierarchy=None, protocol="gpu", workload="streaming", **wargs):
    overrides = {"protocol": protocol}
    if hierarchy is not None:
        overrides["hierarchy"] = hierarchy
    cfg = SystemConfig(num_sms=2).scaled(**overrides)
    if workload == "streaming":
        wargs.setdefault("num_tbs", 2)
        wargs.setdefault("warps_per_tb", 1)
    return run_workload(cfg, make_workload(workload, **wargs))


# ---------------------------------------------------------------------------
# Spec validation: one test per rejection, each with an actionable message
# ---------------------------------------------------------------------------

class TestSpecValidation:
    def _spec(self, **overrides):
        data = dict(SHARED_L3)
        data.update(overrides)
        return HierarchySpec.from_dict(data)

    def test_needs_levels(self):
        with pytest.raises(ValueError, match="non-empty 'levels'"):
            HierarchySpec.from_dict({"levels": []})

    def test_needs_global_level(self):
        spec = HierarchySpec.from_dict({"levels": [dict(L1)]})
        with pytest.raises(ValueError, match="no global level"):
            spec.validate(64)

    def test_core_levels_must_precede_shared(self):
        spec = HierarchySpec.from_dict(
            {"levels": [dict(L2), dict(L1)]}
        )
        with pytest.raises(ValueError, match="must all precede"):
            spec.validate(64)

    def test_duplicate_names_rejected(self):
        spec = HierarchySpec.from_dict(
            {"levels": [dict(L1), dict(L2, name="l1")]}
        )
        with pytest.raises(ValueError, match="duplicate hierarchy level name"):
            spec.validate(64)

    def test_banks_power_of_two(self):
        spec = self._spec()
        spec.levels[1].banks = 12
        with pytest.raises(ValueError, match="banks 12 must be a power of two"):
            spec.validate(64)

    def test_assoc_power_of_two(self):
        spec = self._spec()
        spec.levels[0].assoc = 6
        with pytest.raises(ValueError, match="assoc 6 must be a power of two"):
            spec.validate(64)

    def test_geometry_must_divide(self):
        spec = self._spec()
        spec.levels[1].size = 1000
        with pytest.raises(ValueError, match="does not divide"):
            spec.validate(64)

    def test_global_level_cannot_bypass(self):
        spec = self._spec()
        spec.levels[1].bypass = True
        with pytest.raises(ValueError, match="core-side options"):
            spec.validate(64)

    def test_cluster_needs_size(self):
        with pytest.raises(ValueError, match="cluster_size >= 2"):
            CacheLevelSpec(name="lc", sharing="cluster").validate(64)

    def test_cluster_size_only_for_clusters(self):
        with pytest.raises(ValueError, match="only meaningful"):
            CacheLevelSpec(name="lp", cluster_size=4).validate(64)

    def test_cluster_must_divide_sms(self):
        spec = HierarchySpec.from_dict(CLUSTER_L2)
        with pytest.raises(ValueError, match="does not divide num_sms"):
            spec.validate(64, num_sms=3)

    def test_needs_core_side_level(self):
        spec = HierarchySpec.from_dict({"levels": [dict(L2)]})
        with pytest.raises(ValueError, match="at least one core-side"):
            spec.validate(64)

    def test_reserved_component_names_rejected(self):
        for bad in ("mshr", "cache", "dram", "bank0", "sm1"):
            spec = HierarchySpec.from_dict(
                {"levels": [dict(L1), dict(L1, name=bad), dict(L2)]}
            )
            with pytest.raises(ValueError, match="collides with a fixed"):
                spec.validate(64)

    def test_cpu_only_config_accepts_cluster_levels(self):
        # No SMs: cluster levels elaborate privately on the CPU and the
        # divisibility rule is vacuous (regression: used to re-validate
        # against a fabricated num_sms=1 and reject).
        cfg = SystemConfig(num_sms=0).scaled(hierarchy=CLUSTER_L2)
        system = System(cfg)
        assert system.sms == []
        assert system.cpus[0].l1.levels[1].name == "l2c"

    def test_first_level_cannot_be_victim(self):
        spec = HierarchySpec.from_dict(
            {"levels": [dict(L1, victim=True), dict(L2)]}
        )
        with pytest.raises(ValueError, match="first core-side level"):
            spec.validate(64)

    def test_unknown_level_field(self):
        with pytest.raises(ValueError, match="unknown cache level field"):
            CacheLevelSpec.from_dict({"name": "l1", "sise": 1024})

    def test_unknown_hierarchy_field(self):
        with pytest.raises(ValueError, match="unknown hierarchy field"):
            HierarchySpec.from_dict({"levels": [dict(L1)], "lable": "x"})

    def test_config_validates_hierarchy_at_construction(self):
        with pytest.raises(ValueError, match="no global level"):
            SystemConfig(hierarchy={"levels": [dict(L1)]})

    def test_round_trip_is_canonical(self):
        once = HierarchySpec.from_dict(SHARED_L3).to_dict()
        twice = HierarchySpec.from_dict(once).to_dict()
        assert once == twice
        assert all(set(lv) == {f for f in lv} for lv in once["levels"])


class TestConfigPlacement:
    def test_node_placement_from_config(self):
        cfg = SystemConfig(num_sms=3, num_cpus=2)
        assert cfg.sm_nodes == [0, 1, 2]
        assert cfg.cpu_nodes == [15, 14]
        assert not set(cfg.sm_nodes) & set(cfg.cpu_nodes)

    def test_capacity_message_is_actionable(self):
        with pytest.raises(ValueError, match="grow mesh_rows/mesh_cols"):
            SystemConfig(num_sms=20)

    def test_system_uses_config_placement(self):
        system = System(SystemConfig(num_sms=2))
        assert system.sm_nodes == [0, 1]
        assert system.cpu_nodes == [15]


# ---------------------------------------------------------------------------
# Elaboration: the default spec is the flat-field machine
# ---------------------------------------------------------------------------

class TestDefaultEquivalence:
    def test_explicit_default_spec_matches_flat_fields(self):
        flat = _small_run()
        spec = HierarchySpec.from_config(SystemConfig()).to_dict()
        explicit = _small_run(hierarchy=spec)
        assert explicit.cycles == flat.cycles
        assert explicit.stats == flat.stats
        assert explicit.breakdown.to_dict() == flat.breakdown.to_dict()

    def test_default_config_serialization_unchanged(self):
        data = SystemConfig().to_dict()
        assert "hierarchy" not in data
        assert SystemConfig.from_dict(data) == SystemConfig()

    def test_hierarchy_survives_round_trip(self):
        cfg = SystemConfig(hierarchy=SHARED_L3)
        again = SystemConfig.from_dict(cfg.to_dict())
        assert again == cfg
        assert [lv.name for lv in again.effective_hierarchy().levels] == [
            "l1", "l2", "l3"
        ]

    def test_component_tree_names_unchanged(self):
        system = System(SystemConfig(num_sms=2))
        snap = system.stats()
        assert "bank0" in snap["l2"].children
        assert "cache" in snap["sm0.l1"].children
        assert "mshr" in snap["sm0.l1"].children


# ---------------------------------------------------------------------------
# Non-default shapes, end-to-end
# ---------------------------------------------------------------------------

class TestShapes:
    @pytest.mark.parametrize("name", sorted(SHAPES))
    @pytest.mark.parametrize("protocol", ["gpu", "denovo"])
    def test_shape_runs_end_to_end(self, name, protocol):
        result = _small_run(hierarchy=SHAPES[name], protocol=protocol)
        assert result.cycles > 0
        assert result.instructions == 256  # streaming is deterministic

    def test_bypass_forfeits_l1_hits(self):
        base = _small_run(workload="stencil_global", warps_per_tb=2)
        byp = _small_run(
            hierarchy=L1_BYPASS, workload="stencil_global", warps_per_tb=2
        )
        hits = lambda r: sum(v["load_hits"] for v in r.stats["l1"].values())
        assert hits(base) > 0
        assert hits(byp) == 0
        assert byp.cycles >= base.cycles

    def test_shared_l3_appears_in_stats_tree(self):
        cfg = SystemConfig(num_sms=2).scaled(hierarchy=SHARED_L3)
        result = run_workload(
            cfg, make_workload("streaming", num_tbs=2, warps_per_tb=1)
        )
        snap = result.stats_tree
        assert "l3" in snap.children
        assert snap["l3.level_hits"] + snap["l3.level_misses"] >= 0

    def test_private_l2_keeps_denovo_lines_across_l1_capacity(self):
        # A tiny L1 backed by a big private L2: under DeNovo the private L2
        # keeps registered lines close, so the directory forwards less.
        tiny = {"label": "tiny-l1", "levels": [
            dict(L1, size=4096, assoc=2), dict(L2)]}
        tiny_pl2 = {"label": "tiny-l1+pl2", "levels": [
            dict(L1, size=4096, assoc=2),
            {"name": "l2p", "sharing": "private", "size": 256 * 1024,
             "assoc": 8, "hit_latency": 8},
            dict(L2, name="l3")]}
        base = _small_run(hierarchy=tiny, protocol="denovo",
                          workload="stencil_global", warps_per_tb=2)
        pl2 = _small_run(hierarchy=tiny_pl2, protocol="denovo",
                         workload="stencil_global", warps_per_tb=2)
        hits = lambda r: sum(v["load_hits"] for v in r.stats["l1"].values())
        assert hits(base) > 0
        assert hits(pl2) >= hits(base)

    def test_cluster_level_is_shared_between_members(self):
        cfg = SystemConfig(num_sms=2).scaled(hierarchy=CLUSTER_L2)
        system = System(cfg)
        tags0 = system.sms[0].l1.levels[1].tags
        tags1 = system.sms[1].l1.levels[1].tags
        assert tags0 is tags1
        # the shared array is adopted by exactly one stack's subtree
        assert tags0.parent is system.sms[0].l1

    def test_cpu_gets_private_copy_of_cluster_level(self):
        cfg = SystemConfig(num_sms=2).scaled(hierarchy=CLUSTER_L2)
        system = System(cfg)
        cpu_tags = system.cpus[0].l1.levels[1].tags
        assert cpu_tags is not system.sms[0].l1.levels[1].tags


# ---------------------------------------------------------------------------
# A two-core fabric harness for edge-case unit tests
# ---------------------------------------------------------------------------

class FabricHarness:
    """Two core stacks sharing a directory level (plus optional deeper
    shared levels) over the mesh -- MiniSystem, hierarchy-aware."""

    def __init__(self, protocol_cls, config=None):
        self.config = config or SystemConfig()
        hier = self.config.effective_hierarchy()
        self.engine = Engine()
        self.mesh = Mesh(
            self.engine,
            self.config.mesh_rows,
            self.config.mesh_cols,
            hop_latency=self.config.hop_latency,
            endpoint_bw=self.config.mesh_endpoint_bw,
        )
        self.memory = GlobalMemory()
        self.dram = Dram(self.config.dram_latency, self.config.dram_channels)
        shared = hier.shared_levels
        self.next_levels = [
            SharedCacheLevel(spec, self.config.line_size, self.mesh, depth=i + 1)
            for i, spec in enumerate(shared[1:])
        ]
        self.l2 = L2Cache(
            self.config, self.mesh, self.memory, self.dram,
            spec=shared[0], next_levels=self.next_levels,
        )
        self.l1s = {}
        for node in (0, 5):
            self.l1s[node] = L1Controller(
                node, self.config, self.mesh, self.l2.node_of_line,
                protocol_cls(), self.memory, levels=hier.core_levels,
            )
        requests = {MsgType.GETS, MsgType.PUT_WT, MsgType.GETO,
                    MsgType.ATOMIC, MsgType.WB_OWNED}
        for node in range(self.config.num_nodes):
            def handler(message, node=node):
                if message.mtype in requests:
                    self.l2.handle_message(message)
                else:
                    self.l1s[node].handle_message(message)
            self.mesh.attach(node, handler)

    def load(self, node, line, run=True):
        out = {}

        def done(loc, _rid):
            out["loc"] = loc

        self.l1s[node].load_line(line, done)
        if run:
            self.engine.run()
        return out

    def store(self, node, line):
        self.l1s[node].store_line(line)
        self.engine.run()


class TestEvictionWritebackEdgeCases:
    """The satellite cases: dirty-evict under a full MSHR and
    invalidate-during-pending-fill, at a private and a shared level."""

    def _tiny_denovo(self, mshr=2):
        cfg = SystemConfig(
            l1_size=2 * 64, l1_assoc=1, l1_banks=1, mshr_entries=mshr
        )
        return FabricHarness(DeNovoCoherence, cfg)

    def test_dirty_evict_under_full_mshr_private(self):
        sys = self._tiny_denovo(mshr=2)
        l1 = sys.l1s[0]
        sys.store(0, 0x0)  # set 0, OWNED
        # Fill the MSHR with two outstanding primary misses (no run).
        l1.load_line(0x101, lambda loc, rid: None)
        l1.load_line(0x103, lambda loc, rid: None)
        assert l1.mshr.is_full()
        # A store to the conflicting line evicts the OWNED line while the
        # MSHR is full: the writeback must not need (or take) an MSHR slot.
        assert l1.cache.state_of(0x0) is LineState.OWNED
        l1.store_line(0x2)  # set 0 again
        sys.engine.run()
        assert sys.l2.owner.get(0x0) is None  # WB_OWNED cleared the registry
        assert sys.l2.owner.get(0x2) == 0
        assert not l1.wb_pending

    def test_invalidate_during_pending_fill_private(self):
        sys = self._tiny_denovo()
        l1_a, l1_b = sys.l1s[0], sys.l1s[5]
        sys.store(0, 0x10)  # core A owns the line
        # Core B starts a load of the same line; while its fill is pending
        # (forwarded through A), core B itself gets a recall for another
        # race -- simulate by injecting the recall before running.
        out = sys.load(5, 0x10, run=False)
        assert l1_b.mshr.lookup(0x10) is not None
        l1_b._handle_fwd_geto(type("M", (), {"line": 0x10})())
        sys.engine.run()
        # The pending fill still completes and re-installs the line.
        assert out["loc"] is ServiceLocation.REMOTE_L1
        assert l1_b.cache.contains(0x10)
        assert l1_b.mshr.lookup(0x10) is None

    def test_acquire_invalidate_during_pending_fill(self):
        sys = self._tiny_denovo()
        l1 = sys.l1s[0]
        out = sys.load(0, 0x20, run=False)
        l1.acquire_invalidate()  # kernel-launch acquire mid-flight
        sys.engine.run()
        assert out["loc"] is ServiceLocation.MEMORY
        assert l1.cache.contains(0x20)

    def test_l1_eviction_spills_into_private_l2_and_hits_there(self):
        # Deterministic spill + deep-hit: a 2-line direct-mapped L1 backed
        # by a private L2.  A conflict eviction must land in the private L2
        # and the re-reference must be served by the stack (no second
        # directory load), not by the network.
        shape = {"levels": [
            dict(L1, size=2 * 64, assoc=1, banks=1),
            {"name": "l2p", "sharing": "private", "size": 64 * 1024,
             "assoc": 8, "hit_latency": 8},
            dict(L2),
        ]}
        cfg = SystemConfig(hierarchy=shape)
        sys = FabricHarness(GpuCoherence, cfg)
        l1 = sys.l1s[0]
        assert sys.load(0, 0x100)["loc"] is ServiceLocation.MEMORY
        sys.load(0, 0x102)  # same L1 set: evicts 0x100 into the private L2
        assert not l1.cache.contains(0x100)
        assert l1.levels[1].tags.contains(0x100)
        loads_before = int(sys.l2.loads)
        out = sys.load(0, 0x100)
        assert out["loc"] is ServiceLocation.L1  # served within the stack
        assert int(sys.l2.loads) == loads_before  # no directory traffic
        assert l1.cache.contains(0x100)  # promoted back up

    def test_victim_hit_behind_bypassed_l0_keeps_the_line(self):
        # [l1 bypass, l2p, vic victim, l2 global]: a victim hit must promote
        # into l2p (the first non-bypass level), never discard the line.
        shape = {"levels": [
            dict(L1, bypass=True),
            {"name": "l2p", "sharing": "private", "size": 2 * 64, "assoc": 1,
             "hit_latency": 4},
            {"name": "vic", "sharing": "private", "size": 64 * 1024,
             "assoc": 8, "hit_latency": 6, "victim": True},
            dict(L2),
        ]}
        cfg = SystemConfig(hierarchy=shape)
        sys = FabricHarness(GpuCoherence, cfg)
        l1 = sys.l1s[0]
        sys.load(0, 0x100)
        sys.load(0, 0x102)  # conflict: 0x100 spills into the victim level
        assert l1.levels[2].tags.contains(0x100)
        out = sys.load(0, 0x100)  # victim hit: promote back into l2p
        assert out["loc"] is ServiceLocation.L1
        assert l1.levels[1].tags.contains(0x100)
        assert not l1.levels[2].tags.contains(0x100)
        # and the line is still somewhere in the stack for the next access
        loads_before = int(sys.l2.loads)
        assert sys.load(0, 0x100)["loc"] is ServiceLocation.L1
        assert int(sys.l2.loads) == loads_before

    def test_shared_level_eviction_is_silent_and_counted(self):
        # A one-set directory level: every other fill evicts.  The tags are
        # authoritative only for presence (GlobalMemory holds data), so the
        # eviction must not lose coherence state.
        shape = {"levels": [
            dict(L1),
            {"name": "l2", "sharing": "global", "size": 2 * 64, "assoc": 1,
             "banks": 2, "hit_latency": 23, "dir_latency": 8},
        ]}
        cfg = SystemConfig(hierarchy=shape)
        sys = FabricHarness(GpuCoherence, cfg)
        assert sys.load(0, 0x100)["loc"] is ServiceLocation.MEMORY
        assert sys.load(0, 0x102)["loc"] is ServiceLocation.MEMORY  # evicts 0x100
        bank0 = sys.l2.tags.banks[0]
        assert bank0.evictions >= 1
        # the evicted line simply refetches from below
        sys.l1s[0].acquire_invalidate()
        assert sys.load(0, 0x100)["loc"] is ServiceLocation.MEMORY

    def test_shared_l3_hit_after_l2_eviction(self):
        # Directory level of one set per bank, L3 big: an L2-evicted line
        # must be served by the L3 (ServiceLocation.L2, not MEMORY).
        shape = {"levels": [
            dict(L1),
            {"name": "l2", "sharing": "global", "size": 2 * 64, "assoc": 1,
             "banks": 2, "hit_latency": 23, "dir_latency": 8},
            {"name": "l3", "sharing": "global", "size": 1024 * 1024,
             "assoc": 16, "banks": 4, "hit_latency": 37, "dir_latency": 12},
        ]}
        cfg = SystemConfig(hierarchy=shape)
        sys = FabricHarness(GpuCoherence, cfg)
        l3 = sys.next_levels[0]
        assert sys.load(0, 0x100)["loc"] is ServiceLocation.MEMORY
        assert l3.misses == 1
        sys.load(0, 0x102)  # evicts 0x100 from the tiny L2
        sys.l1s[0].acquire_invalidate()
        out = sys.load(0, 0x100)
        assert out["loc"] is ServiceLocation.L2  # L3 caught it
        assert l3.hits == 1
        assert sys.l2.dram_fills == 2  # only the two cold misses hit DRAM


# ---------------------------------------------------------------------------
# Scenario cache keys and sweep axes
# ---------------------------------------------------------------------------

class TestHierarchyCacheKeys:
    def _scenario(self, hierarchy):
        return Scenario(
            "s", "streaming", {"num_tbs": 1, "warps_per_tb": 1},
            {"hierarchy": hierarchy},
        )

    def test_two_shapes_never_share_a_cache_entry(self):
        keys = {
            name: self._scenario(shape).key() for name, shape in SHAPES.items()
        }
        assert len(set(keys.values())) == len(keys)
        base = Scenario("s", "streaming", {"num_tbs": 1, "warps_per_tb": 1})
        assert base.key() not in set(keys.values())

    def test_equivalent_spellings_share_a_key(self):
        verbose = HierarchySpec.from_dict(SHARED_L3).to_dict()
        assert self._scenario(SHARED_L3).key() == self._scenario(verbose).key()

    def test_label_does_not_change_the_key(self):
        relabelled = dict(SHARED_L3, label="something-else")
        assert self._scenario(SHARED_L3).key() == self._scenario(relabelled).key()

    def test_sweep_axis_uses_shape_labels(self):
        base = Scenario("shapes", "streaming", {"num_tbs": 1, "warps_per_tb": 1})
        grid = Sweep(base, {"hierarchy": [SHARED_L3, PRIVATE_L2]}).expand()
        assert [s.name for s in grid] == [
            "shapes/hierarchy=shared-l3", "shapes/hierarchy=private-l2"
        ]
        assert grid[0].key() != grid[1].key()


# ---------------------------------------------------------------------------
# Replay over the fabric
# ---------------------------------------------------------------------------

class TestReplayOverFabric:
    def _record(self, tmp_path):
        from repro.trace import record_workload, save_trace

        cfg = SystemConfig(num_sms=2)
        result, trace = record_workload(
            cfg, make_workload("streaming", num_tbs=2, warps_per_tb=1),
            name="streaming",
        )
        path = str(tmp_path / "s.gsitrace")
        save_trace(trace, path)
        return result, trace

    def test_replay_exact_on_default_fabric(self, tmp_path):
        from repro.trace import replay_trace

        result, trace = self._record(tmp_path)
        replayed = replay_trace(trace)
        assert replayed.cycles == result.cycles

    @pytest.mark.parametrize("shape", ["shared-l3", "private-l2", "l1-bypass"])
    def test_replay_under_swept_hierarchy(self, tmp_path, shape):
        from repro.trace import replay_trace

        _, trace = self._record(tmp_path)
        replayed = replay_trace(trace, overrides={"hierarchy": SHAPES[shape]})
        assert replayed.cycles > 0
        assert replayed.stats["replay"]["events_injected"] == trace.num_events
