"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import WORKLOADS, build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in WORKLOADS:
            assert name in out

    def test_table51_command(self, capsys):
        assert main(["table51"]) == 0
        assert "Table 5.1" in capsys.readouterr().out

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "bogus"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestRun:
    def test_run_streaming(self, capsys):
        assert main(["run", "streaming", "--sms", "2"]) == 0
        out = capsys.readouterr().out
        assert "execution:" in out
        assert "no_stall" in out

    def test_run_with_timeline_and_energy(self, capsys):
        assert main(
            ["run", "streaming", "--sms", "1", "--timeline", "256", "--energy"]
        ) == 0
        out = capsys.readouterr().out
        assert "one column = 256 cycles" in out
        assert "energy by component" in out

    def test_run_denovo_reduction(self, capsys):
        assert main(
            ["run", "reduction", "--sms", "2", "--protocol", "denovo", "--warps", "2"]
        ) == 0
        assert "reduction" in capsys.readouterr().out

    def test_run_per_sm(self, capsys):
        assert main(["run", "streaming", "--sms", "2", "--per-sm"]) == 0
        out = capsys.readouterr().out
        assert "sm0" in out and "sm1" in out

    def test_run_uts_small(self, capsys):
        assert main(
            ["run", "uts", "--sms", "2", "--nodes", "20", "--warps", "2"]
        ) == 0
        assert "synchronization" in capsys.readouterr().out

    def test_run_gto_scheduler(self, capsys):
        assert main(["run", "streaming", "--sms", "1", "--scheduler", "gto"]) == 0

    def test_run_implicit_stash(self, capsys):
        assert main(["run", "implicit_stash", "--warps", "4"]) == 0
        assert "implicit_stash" in capsys.readouterr().out

    def test_run_with_set_overrides(self, capsys):
        assert main(
            ["run", "streaming", "--sms", "2", "--set", "l2_banks=8",
             "--set", "hop_latency=5"]
        ) == 0
        assert "execution:" in capsys.readouterr().out

    def test_run_bad_set_override_exits_2(self, capsys):
        assert main(["run", "streaming", "--set", "l2_banks=7"]) == 2
        assert "power of two" in capsys.readouterr().err
        assert main(["run", "streaming", "--set", "nonsense"]) == 2
        assert "FIELD=VALUE" in capsys.readouterr().err

    def test_run_with_hierarchy_file(self, tmp_path, capsys):
        from repro.mem.hierarchy import example_shapes

        path = tmp_path / "shape.json"
        path.write_text(json.dumps(example_shapes()["l1-bypass"]))
        assert main(
            ["run", "streaming", "--sms", "2", "--hierarchy", str(path)]
        ) == 0
        assert "execution:" in capsys.readouterr().out

    def test_run_with_bad_hierarchy_file_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"levels": []}))
        assert main(["run", "streaming", "--hierarchy", str(path)]) == 2
        assert "non-empty 'levels'" in capsys.readouterr().err
        assert main(["run", "streaming", "--hierarchy", "missing.json"]) == 2


class TestSweep:
    @pytest.fixture
    def spec_file(self, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text(
            json.dumps(
                [
                    {
                        "name": "s",
                        "workload": "streaming",
                        "workload_args": {"num_tbs": 2, "warps_per_tb": 1},
                        "config": {"num_sms": 2},
                        "grid": {"mshr_entries": [8, 16]},
                    }
                ]
            )
        )
        return str(path)

    def test_sweep_text(self, spec_file, capsys):
        assert main(["sweep", spec_file]) == 0
        out = capsys.readouterr().out
        assert "2 scenario(s)" in out
        assert "s/mshr_entries=8" in out
        assert "execution time breakdown" in out

    def test_sweep_json_and_out_file(self, spec_file, capsys, tmp_path):
        out_file = str(tmp_path / "report.json")
        assert main(["sweep", spec_file, "--format", "json", "--out", out_file]) == 0
        data = json.loads(capsys.readouterr().out)
        assert set(data) == {"s/mshr_entries=8", "s/mshr_entries=16"}
        assert data["s/mshr_entries=8"]["result"]["cycles"] > 0
        with open(out_file) as fh:
            assert json.load(fh) == data

    def test_sweep_csv(self, spec_file, capsys):
        assert main(["sweep", spec_file, "--format", "csv"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("config,category,cycles")

    def test_sweep_cache_round_trip(self, spec_file, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        assert main(["sweep", spec_file, "--cache", cache]) == 0
        first = capsys.readouterr().out
        assert "cached" not in first
        assert main(["sweep", spec_file, "--cache", cache]) == 0
        assert "cached" in capsys.readouterr().out

    def test_sweep_failed_expectation_exits_nonzero(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(
            json.dumps(
                [
                    {
                        "name": "impossible",
                        "workload": "streaming",
                        "workload_args": {"num_tbs": 2, "warps_per_tb": 1},
                        "config": {"num_sms": 2},
                        "expect": {"max_cycles": 1},
                    }
                ]
            )
        )
        assert main(["sweep", str(path)]) == 1
        captured = capsys.readouterr()
        assert "CHECK FAILED" in captured.out
        assert "expected-shape violations" in captured.err


class TestTelemetry:
    def test_run_with_telemetry_and_timeline_trace(self, tmp_path, capsys):
        series = str(tmp_path / "run.jsonl")
        trace = str(tmp_path / "run.trace.json")
        assert main(
            ["run", "streaming", "--sms", "2", "--quiet",
             "--telemetry", series, "--sample-every", "500",
             "--timeline", trace]
        ) == 0
        captured = capsys.readouterr()
        assert "execution:" in captured.out
        assert series in captured.err and trace in captured.err
        from repro.obs import read_series

        assert read_series(series)["samples"]
        payload = json.load(open(trace))
        assert payload["traceEvents"]

    def test_run_ascii_timeline_still_works(self, capsys):
        # --timeline is polymorphic: a bare integer keeps the historical
        # ASCII rendering, a path writes a Chrome trace
        assert main(["run", "streaming", "--sms", "1", "--timeline", "128"]) == 0
        assert "one column = 128 cycles" in capsys.readouterr().out

    def test_run_rejects_bad_sample_every(self, capsys):
        assert main(
            ["run", "streaming", "--telemetry", "x.jsonl", "--sample-every", "0"]
        ) == 2
        assert "sample-every" in capsys.readouterr().err

    def test_telemetry_summarize(self, tmp_path, capsys):
        series = str(tmp_path / "run.jsonl")
        main(["run", "streaming", "--sms", "2", "--quiet",
              "--telemetry", series, "--sample-every", "500"])
        capsys.readouterr()
        assert main(["telemetry", "summarize", series]) == 0
        out = capsys.readouterr().out
        assert "samples" in out and "breakdown.memory_data" in out

    def test_telemetry_summarize_missing_file_exits_2(self, tmp_path, capsys):
        assert main(
            ["telemetry", "summarize", str(tmp_path / "nope.jsonl")]
        ) == 2
        assert capsys.readouterr().err

    def test_sweep_per_cell_telemetry(self, tmp_path, capsys):
        spec = tmp_path / "sweep.json"
        spec.write_text(
            json.dumps(
                [
                    {
                        "name": "cell%d" % n,
                        "workload": "streaming",
                        "workload_args": {"num_tbs": 2, "warps_per_tb": 1},
                        "config": {"num_sms": 2, "mshr_entries": 8 * n},
                    }
                    for n in (1, 2)
                ]
            )
        )
        out_dir = str(tmp_path / "tel")
        trace = str(tmp_path / "cells.trace.json")
        assert main(
            ["sweep", str(spec), "--telemetry", out_dir,
             "--sample-every", "400", "--timeline", trace]
        ) == 0
        captured = capsys.readouterr()
        # progress lines ride stderr, one per cell, and never touch stdout
        assert captured.err.count("cell1") == 1
        assert captured.err.count("cell2") == 1
        index = json.load(open(str(tmp_path / "tel" / "index.json")))
        assert set(index["cells"]) == {"cell1", "cell2"}
        cells = json.load(open(trace))
        assert [e for e in cells["traceEvents"] if e["ph"] == "X"]

    def test_sweep_quiet_suppresses_progress(self, tmp_path, capsys):
        spec = tmp_path / "sweep.json"
        spec.write_text(
            json.dumps(
                [
                    {
                        "name": "solo",
                        "workload": "streaming",
                        "workload_args": {"num_tbs": 2, "warps_per_tb": 1},
                        "config": {"num_sms": 2},
                    }
                ]
            )
        )
        assert main(["sweep", str(spec), "--quiet"]) == 0
        assert "solo" not in capsys.readouterr().err
