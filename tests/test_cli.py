"""Tests for the command-line interface."""

import pytest

from repro.cli import WORKLOADS, build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in WORKLOADS:
            assert name in out

    def test_table51_command(self, capsys):
        assert main(["table51"]) == 0
        assert "Table 5.1" in capsys.readouterr().out

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "bogus"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestRun:
    def test_run_streaming(self, capsys):
        assert main(["run", "streaming", "--sms", "2"]) == 0
        out = capsys.readouterr().out
        assert "execution:" in out
        assert "no_stall" in out

    def test_run_with_timeline_and_energy(self, capsys):
        assert main(
            ["run", "streaming", "--sms", "1", "--timeline", "256", "--energy"]
        ) == 0
        out = capsys.readouterr().out
        assert "one column = 256 cycles" in out
        assert "energy by component" in out

    def test_run_denovo_reduction(self, capsys):
        assert main(
            ["run", "reduction", "--sms", "2", "--protocol", "denovo", "--warps", "2"]
        ) == 0
        assert "reduction" in capsys.readouterr().out

    def test_run_per_sm(self, capsys):
        assert main(["run", "streaming", "--sms", "2", "--per-sm"]) == 0
        out = capsys.readouterr().out
        assert "sm0" in out and "sm1" in out

    def test_run_uts_small(self, capsys):
        assert main(
            ["run", "uts", "--sms", "2", "--nodes", "20", "--warps", "2"]
        ) == 0
        assert "synchronization" in capsys.readouterr().out

    def test_run_gto_scheduler(self, capsys):
        assert main(["run", "streaming", "--sms", "1", "--scheduler", "gto"]) == 0

    def test_run_implicit_stash(self, capsys):
        assert main(["run", "implicit_stash", "--warps", "4"]) == 0
        assert "implicit_stash" in capsys.readouterr().out
