"""Tests for the experiment harness (tiny problem sizes)."""

import json

import pytest

from repro.experiments import figures
from repro.experiments.runner import EXPERIMENTS, run, select


class TestTable51:
    def test_renders_all_parameters(self):
        text = figures.table51()
        for needle in ("700 MHz", "2 GHz", "16 KB", "32 KB", "4 MB"):
            assert needle in text


class TestFig61Small:
    @pytest.fixture(scope="class")
    def result(self):
        return figures.fig61(total_nodes=30, warps_per_tb=2)

    def test_two_configs(self, result):
        assert set(result.results) == {"gpu-coh", "denovo"}

    def test_render_contains_tables_and_claims(self, result):
        text = result.render()
        assert "execution time breakdown" in text
        assert "shape claims:" in text
        assert "fig6.1-uts" in text

    def test_sync_dominates_claim_holds(self, result):
        claim = next(c for c in result.claims if "dominate" in c.text)
        assert claim.holds


class TestFig63Small:
    @pytest.fixture(scope="class")
    def result(self):
        return figures.fig63(num_tbs=2, warps_per_tb=8)

    def test_three_configs(self, result):
        assert set(result.results) == {"scratchpad", "scratchpad+dma", "stash"}

    def test_all_claims_hold(self, result):
        failed = [str(c) for c in result.claims if not c.holds]
        assert not failed, failed

    def test_claim_string_format(self, result):
        text = str(result.claims[0])
        assert text.startswith("[OK ]") or text.startswith("[DEV]")
        assert "paper:" in text


class TestFig64Small:
    def test_sweep_keys_and_claims(self):
        sweep = figures.fig64(mshr_sizes=(32, 256), num_tbs=2, warps_per_tb=8)
        assert set(sweep) == {32, 256}
        assert sweep[256].claims  # claims attach to the largest size
        failed = [str(c) for c in sweep[256].claims if not c.holds]
        assert not failed, failed


class TestOverhead:
    def test_overhead_stats_shape(self):
        stats = figures.overhead_experiment(repeats=1)
        assert set(stats) == {
            "with_gsi_s",
            "without_gsi_s",
            "overhead_pct",
            "cycles_per_sec",
            "engine_events",
            "engine_wakeups",
        }
        assert stats["with_gsi_s"] > 0
        assert stats["without_gsi_s"] > 0
        assert stats["cycles_per_sec"] > 0
        assert stats["engine_events"] > 0


class TestRunner:
    def test_registry_complete(self):
        assert set(EXPERIMENTS) == {
            "table5.1",
            "fig6.1",
            "fig6.2",
            "fig6.3",
            "fig6.4",
            "hierarchy",
            "campaign",
            "overhead",
        }

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            run(["fig9.9"])

    def test_unknown_experiment_suggests_close_match(self):
        with pytest.raises(ValueError, match="did you mean fig6.3"):
            run(["fig6.33"])

    def test_duplicates_deduped_preserving_order(self):
        assert select(["fig6.3", "table5.1", "fig6.3"]) == ["fig6.3", "table5.1"]

    def test_duplicate_request_runs_once(self):
        out = run(["table5.1", "table5.1"])
        assert out.count("Table 5.1:") == 1

    def test_table_runs_standalone(self):
        out = run(["table5.1"])
        assert "Table 5.1" in out

    def test_table_json_format(self):
        data = json.loads(run(["table5.1"], fmt="json"))
        assert data["table5.1"]["table5.1"]["GPU SMs"] == "15"
        assert data["table5.1"]["config"]["num_sms"] == 15

    def test_table_csv_format(self):
        out = run(["table5.1"], fmt="csv")
        assert out.startswith("parameter,value\n")
        assert "GPU SMs" in out

    def test_bad_format_rejected(self):
        with pytest.raises(ValueError, match="format"):
            run(["table5.1"], fmt="xml")


class TestParallelAndCache:
    """Figure-level acceptance: --jobs N and --cache change nothing but time."""

    ARGS = dict(total_nodes=30, warps_per_tb=2)

    def test_parallel_render_byte_identical(self, tmp_path):
        cache = str(tmp_path / "cache")
        serial = figures.fig61(jobs=1, cache_dir=cache, **self.ARGS)
        parallel = figures.fig61(jobs=4, **self.ARGS)
        assert serial.render() == parallel.render()
        assert serial.to_csv() == parallel.to_csv()
        # the serial run populated the cache; this one must be all hits
        cached = figures.fig61(jobs=1, cache_dir=cache, **self.ARGS)
        assert all(r.cached for r in cached.records)
        assert cached.render() == serial.render()

    def test_experiment_result_exports(self, tmp_path):
        result = figures.fig61(
            jobs=1, cache_dir=str(tmp_path / "cache"), **self.ARGS
        )
        data = result.to_dict()
        assert set(data["results"]) == {"gpu-coh", "denovo"}
        assert data["results"]["gpu-coh"]["cycles"] == result.results["gpu-coh"].cycles
        assert len(data["claims"]) == len(result.claims)
        json.dumps(data)  # must be JSON-ready
        csv = result.to_csv()
        assert csv.startswith("experiment,config,category,cycles\n")
        assert "fig6.1-uts,denovo,no_stall," in csv
