"""Component/Stats substrate: tree wiring, snapshots, resets, exports.

Covers the contracts the rest of the simulator leans on:

* int-like :class:`StatCounter` semantics (the refactor's compatibility
  story: ``self.hits += 1`` must behave exactly like the bare int it
  replaced);
* ``stats()`` snapshot / ``reset_stats()`` round-trips;
* CSV/JSON export equivalence with the legacy per-attribute report path
  (``SimResult.stats`` must be a faithful projection of the tree).
"""

import json

import pytest

from repro.core.component import (
    Component,
    StatCounter,
    StatHistogram,
    StatsSnapshot,
)
from repro.sim.config import SystemConfig
from repro.system import System, legacy_stats_view, run_workload
from repro.workloads import make_workload


class TestStatCounter:
    def test_int_like_arithmetic_and_comparisons(self):
        c = StatCounter("c")
        c += 3
        c += 2
        c -= 1
        assert c == 4
        assert c != 5
        assert c < 5 and c <= 4 and c > 3 and c >= 4
        assert c + 1 == 5 and 1 + c == 5
        assert c - 1 == 3 and 10 - c == 6
        assert c * 2 == 8 and c / 2 == 2.0
        assert c // 3 == 1 and c % 3 == 1
        assert int(c) == 4 and float(c) == 4.0
        assert "%d" % c == "4"
        assert max(1, c) == 4

    def test_inplace_ops_preserve_identity(self):
        c = StatCounter("c")
        before = id(c)
        c += 10
        assert id(c) == before  # attribute rebinding must be a no-op

    def test_maximize_and_reset(self):
        c = StatCounter("peak")
        c.maximize(7)
        c.maximize(3)
        assert c == 7
        c.reset()
        assert c == 0

    def test_truthiness(self):
        c = StatCounter("c")
        assert not c
        c += 1
        assert c


class TestStatHistogram:
    def test_observe_and_snapshot_sorted(self):
        h = StatHistogram("occ")
        for v in (3, 1, 3, 2):
            h.observe(v)
        assert h.snapshot() == {"1": 1, "2": 1, "3": 2}
        assert h.total == 4
        h.reset()
        assert h.snapshot() == {}


class TestComponentTree:
    def make_tree(self):
        root = Component("root")
        child = Component("child", parent=root)
        grand = Component("grand", parent=child)
        root.stat_counter("a")
        child.stat_counter("b")
        grand.stat_counter("c")
        return root, child, grand

    def test_paths_and_find(self):
        root, child, grand = self.make_tree()
        assert grand.path() == "root.child.grand"
        assert root.find("child.grand") is grand
        with pytest.raises(KeyError):
            root.find("child.missing")

    def test_duplicate_child_name_rejected(self):
        root = Component("root")
        Component("x", parent=root)
        with pytest.raises(ValueError):
            Component("x", parent=root)

    def test_reparent_with_rename_unlinks_old_slot(self):
        p1, p2 = Component("p1"), Component("p2")
        c = Component("x", parent=p1)
        p2.add_child(c, name="y")
        assert c.parent is p2 and c.path() == "p2.y"
        assert p1.children == {}  # no stale 'x' entry double-counting c
        assert p2.find("y") is c

    def test_engine_inherited_from_ancestors(self):
        root, child, grand = self.make_tree()
        sentinel = object()
        root.engine = sentinel
        assert grand.engine is None  # plain attribute: unset until resolved
        assert grand.find_engine() is sentinel
        assert grand.engine is sentinel  # cached after first resolution

    def test_snapshot_navigation(self):
        root, child, grand = self.make_tree()
        child.stat_counter("b").add(5)
        snap = root.stats()
        assert snap["child.b"] == 5
        assert snap["child"]["grand"].values == {"c": 0}
        assert snap.get("child.nope") is None
        with pytest.raises(KeyError):
            snap["child.nope.deeper"]

    def test_membership_sees_none_valued_derived_stat(self):
        root, child, grand = self.make_tree()
        child.stat_derived("maybe", lambda: None)  # "no data this run"
        snap = root.stats()
        assert "child.maybe" in snap
        assert snap["child.maybe"] is None
        assert "child.nope" not in snap

    def test_reset_recurses_and_zeroes(self):
        root, child, grand = self.make_tree()
        root.stat_counter("a").add(1)
        grand.stat_counter("c").add(9)
        root.reset_stats()
        flat = root.stats().flatten()
        assert all(v == 0 for v in flat.values())

    def test_snapshot_dict_round_trip(self):
        root, child, grand = self.make_tree()
        child.stat_counter("b").add(2)
        grand.stat_histogram("h").observe(4)
        snap = root.stats()
        data = json.loads(json.dumps(snap.to_dict()))  # must be JSON-clean
        back = StatsSnapshot.from_dict("root", data)
        assert back.flatten() == snap.flatten()

    def test_csv_export_shape(self):
        root, child, grand = self.make_tree()
        grand.stat_counter("c").add(3)
        csv = root.stats().to_csv()
        lines = csv.strip().splitlines()
        assert lines[0] == "path,stat,value"
        assert "root.child.grand,c,3" in lines


class TestSystemTree:
    """The assembled simulator as one component tree."""

    def run_small(self, **cfg_overrides):
        wl = make_workload("streaming", num_tbs=2, warps_per_tb=2)
        cfg = SystemConfig(num_sms=2, **cfg_overrides)
        cfg = wl.configure(cfg) if hasattr(wl, "configure") else cfg
        system = System(cfg)
        result = system.run(wl)
        return system, result

    def test_tree_shape(self):
        system, _ = self.run_small()
        names = {c.path() for c in system.iter_components()}
        for expected in (
            "system.engine",
            "system.mesh",
            "system.dram",
            "system.l2.bank0",
            "system.sm0.l1.mshr",
            "system.sm0.l1.store_buffer",
            "system.sm0.l1.cache",
            "system.sm0.lsu",
            "system.sm0.compute_units",
            "system.cpu0.l1",
        ):
            assert expected in names, expected

    def test_legacy_stats_equivalence(self):
        """SimResult.stats (the frozen artifact schema, consumed by the
        report/energy paths) must equal the projection of the stats tree."""
        system, result = self.run_small()
        assert result.stats == legacy_stats_view(system.stats())
        # and must survive a JSON round-trip bit-identically
        assert json.loads(json.dumps(result.stats)) == result.stats

    def test_legacy_stats_equivalence_with_scratchpad(self):
        wl = make_workload("implicit_scratchpad", num_tbs=2, warps_per_tb=2)
        cfg = wl.configure(SystemConfig())
        system = System(cfg)
        result = system.run(wl)
        assert "scratchpad" in result.stats
        assert result.stats == legacy_stats_view(system.stats())

    def test_stats_tree_rides_on_result(self):
        system, result = self.run_small()
        assert result.stats_tree["engine.cycles"] > 0
        assert result.stats_tree["engine.events"] == result.stats["engine"]["events"]
        # not part of the serialized artifact (cache byte-identity)
        assert "stats_tree" not in result.to_dict()

    def test_engine_stats_group(self):
        _, result = self.run_small()
        engine = result.stats_tree["engine"]
        assert engine["cycles"] > 0
        assert engine["events"] > 0
        assert engine["wakeups"] > 0

    def test_reset_zeroes_every_counter(self):
        """reset_stats() zeroes all run statistics; live-state gauges
        (cache occupancy) legitimately survive, counters must not."""
        wl = make_workload("streaming", num_tbs=2, warps_per_tb=2)
        cfg = wl.configure(SystemConfig(num_sms=2))
        system = System(cfg)
        system.run(wl)
        system.reset_stats()
        flat = system.stats().flatten()
        leftovers = {
            k: v
            for k, v in flat.items()
            if v != 0 and not k.endswith(".occupancy")
        }
        assert leftovers == {}, leftovers

    def test_one_line_counter_recipe(self):
        """The README recipe: declaring a counter is one line, and it shows
        up in every export path without further plumbing."""
        system, _ = self.run_small()
        sm0 = system.find("sm0")
        demo = sm0.stat_counter("demo_metric")
        demo += 42
        snap = system.stats()
        assert snap["sm0.demo_metric"] == 42
        assert snap.flatten()["system.sm0.demo_metric"] == 42
        assert "system.sm0,demo_metric,42" in snap.to_csv()


class TestReportExportEquivalence:
    """CSV/JSON exports of the tree agree with the legacy report path."""

    def test_result_json_stats_match_tree(self):
        wl = make_workload("streaming", num_tbs=2, warps_per_tb=2)
        cfg = wl.configure(SystemConfig(num_sms=2))
        result = run_workload(cfg, wl)
        payload = json.loads(json.dumps(result.to_dict(), sort_keys=True))
        tree = result.stats_tree
        l1 = payload["stats"]["l1"]["sm0"]
        assert l1["load_hits"] == tree["sm0.l1.load_hits"]
        assert l1["mshr_merges"] == tree["sm0.l1.mshr.merges"]
        assert l1["sb_combines"] == tree["sm0.l1.store_buffer.combines"]
        assert payload["stats"]["l2"]["loads"] == tree["l2.loads"]
        assert payload["stats"]["dram"]["accesses"] == tree["dram.accesses"]
        assert payload["stats"]["mesh"]["messages"] == tree["mesh.messages"]

    def test_format_stats_tree_renders_every_path(self):
        from repro.core.report import format_stats_tree

        wl = make_workload("streaming", num_tbs=2, warps_per_tb=2)
        cfg = wl.configure(SystemConfig(num_sms=2))
        result = run_workload(cfg, wl)
        text = format_stats_tree(result.stats_tree)
        for fragment in ("system:", "mshr:", "store_buffer:", "avg_hops"):
            assert fragment in text
