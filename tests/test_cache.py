"""Unit tests for the set-associative cache tag array."""

import pytest

from repro.mem.cache import LineState, SetAssocCache


@pytest.fixture
def cache():
    return SetAssocCache(num_sets=4, assoc=2)


class TestBasics:
    def test_miss_then_hit(self, cache):
        assert cache.lookup(0x10) is None
        cache.insert(0x10, LineState.VALID)
        assert cache.lookup(0x10) is LineState.VALID
        assert cache.hits == 1
        assert cache.misses == 1

    def test_state_of_does_not_count(self, cache):
        cache.insert(0x10, LineState.OWNED)
        assert cache.state_of(0x10) is LineState.OWNED
        assert cache.state_of(0x11) is None
        assert cache.hits == 0 and cache.misses == 0

    def test_set_mapping(self, cache):
        # lines 0 and 4 map to the same set (4 sets)
        cache.insert(0, LineState.VALID)
        cache.insert(4, LineState.VALID)
        cache.insert(8, LineState.VALID)  # evicts line 0 (LRU)
        assert not cache.contains(0)
        assert cache.contains(4)
        assert cache.contains(8)

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            SetAssocCache(0, 2)
        with pytest.raises(ValueError):
            SetAssocCache(4, 0)


class TestLru:
    def test_lookup_refreshes_lru(self, cache):
        cache.insert(0, LineState.VALID)
        cache.insert(4, LineState.VALID)
        cache.lookup(0)  # 0 becomes MRU
        victim = cache.insert(8, LineState.VALID)
        assert victim == (4, LineState.VALID)

    def test_insert_existing_updates_state(self, cache):
        cache.insert(0, LineState.VALID)
        victim = cache.insert(0, LineState.OWNED)
        assert victim is None
        assert cache.state_of(0) is LineState.OWNED
        assert cache.occupancy() == 1

    def test_eviction_returns_victim_state(self, cache):
        cache.insert(0, LineState.OWNED)
        cache.insert(4, LineState.VALID)
        victim = cache.insert(8, LineState.VALID)
        assert victim == (0, LineState.OWNED)
        assert cache.evictions == 1


class TestInvalidation:
    def test_invalidate_single(self, cache):
        cache.insert(0, LineState.VALID)
        assert cache.invalidate(0) is LineState.VALID
        assert cache.invalidate(0) is None
        assert not cache.contains(0)

    def test_invalidate_all_drops_everything(self, cache):
        for line in range(6):
            cache.insert(line, LineState.VALID)
        dropped = cache.invalidate_all()
        assert dropped == 6
        assert cache.occupancy() == 0

    def test_acquire_keeps_owned_lines_for_denovo(self, cache):
        cache.insert(0, LineState.OWNED)
        cache.insert(1, LineState.VALID)
        cache.insert(2, LineState.OWNED)
        dropped = cache.invalidate_all(keep_owned=True)
        assert dropped == 1
        assert cache.state_of(0) is LineState.OWNED
        assert cache.state_of(2) is LineState.OWNED
        assert not cache.contains(1)

    def test_owned_lines_listing(self, cache):
        cache.insert(0, LineState.OWNED)
        cache.insert(1, LineState.VALID)
        assert cache.owned_lines() == [0]

    def test_set_state_requires_presence(self, cache):
        with pytest.raises(KeyError):
            cache.set_state(0x99, LineState.OWNED)
        cache.insert(0x99, LineState.VALID)
        cache.set_state(0x99, LineState.OWNED)
        assert cache.state_of(0x99) is LineState.OWNED
