"""Unit tests for Algorithms 1 and 2 (the heart of GSI)."""

import pytest

from repro.core.classifier import (
    InstructionSnapshot,
    classify_cycle,
    classify_cycle_first,
    classify_cycle_strong,
    classify_cycle_with_detail,
    classify_instruction,
)
from repro.core.stall_types import CYCLE_PRIORITY, INSTRUCTION_PRIORITY, StallType


class TestAlgorithm1:
    def test_no_active_warps_is_idle(self):
        snap = InstructionSnapshot(no_active_warp=True, can_issue=False)
        assert classify_instruction(snap) is StallType.IDLE

    def test_unavailable_instruction_is_control(self):
        snap = InstructionSnapshot(next_instruction_unavailable=True, can_issue=False)
        assert classify_instruction(snap) is StallType.CONTROL

    def test_sync_beats_memory_data(self):
        snap = InstructionSnapshot(
            blocked_for_synchronization=True,
            data_hazard_on_load=True,
            can_issue=False,
        )
        assert classify_instruction(snap) is StallType.SYNC

    def test_memory_data_beats_memory_structural(self):
        snap = InstructionSnapshot(
            data_hazard_on_load=True,
            structural_hazard_on_lsu=True,
            can_issue=False,
        )
        assert classify_instruction(snap) is StallType.MEM_DATA

    def test_memory_structural_beats_compute_data(self):
        snap = InstructionSnapshot(
            structural_hazard_on_lsu=True,
            data_hazard_on_compute=True,
            can_issue=False,
        )
        assert classify_instruction(snap) is StallType.MEM_STRUCT

    def test_compute_data_beats_compute_structural(self):
        snap = InstructionSnapshot(
            data_hazard_on_compute=True,
            structural_hazard_on_compute_unit=True,
            can_issue=False,
        )
        assert classify_instruction(snap) is StallType.COMP_DATA

    def test_issuable_is_no_stall(self):
        assert classify_instruction(InstructionSnapshot()) is StallType.NO_STALL

    def test_inconsistent_snapshot_rejected(self):
        with pytest.raises(ValueError):
            classify_instruction(InstructionSnapshot(can_issue=False))

    def test_full_priority_chain(self):
        """Each cause beats everything below it in Algorithm 1's order."""
        fields = [
            ("no_active_warp", StallType.IDLE),
            ("next_instruction_unavailable", StallType.CONTROL),
            ("blocked_for_synchronization", StallType.SYNC),
            ("data_hazard_on_load", StallType.MEM_DATA),
            ("structural_hazard_on_lsu", StallType.MEM_STRUCT),
            ("data_hazard_on_compute", StallType.COMP_DATA),
            ("structural_hazard_on_compute_unit", StallType.COMP_STRUCT),
        ]
        for i, (field, expected) in enumerate(fields):
            kwargs = {f: True for f, _ in fields[i:]}
            kwargs["can_issue"] = False
            assert classify_instruction(InstructionSnapshot(**kwargs)) is expected


class TestAlgorithm2:
    def test_any_issue_means_no_stall(self):
        causes = [StallType.MEM_DATA, StallType.NO_STALL, StallType.SYNC]
        assert classify_cycle(causes) is StallType.NO_STALL

    def test_weakest_cause_wins(self):
        # Memory structural is the weakest (closest to issuing) non-issue
        # cause in Algorithm 2's order.
        causes = [StallType.IDLE, StallType.SYNC, StallType.MEM_STRUCT]
        assert classify_cycle(causes) is StallType.MEM_STRUCT

    def test_mem_struct_beats_mem_data(self):
        assert (
            classify_cycle([StallType.MEM_DATA, StallType.MEM_STRUCT])
            is StallType.MEM_STRUCT
        )

    def test_sync_beats_compute(self):
        # Not an exact inversion of Algorithm 1: sync outranks both compute
        # causes in the cycle priority.
        assert (
            classify_cycle([StallType.COMP_DATA, StallType.SYNC]) is StallType.SYNC
        )
        assert (
            classify_cycle([StallType.COMP_STRUCT, StallType.SYNC]) is StallType.SYNC
        )

    def test_idle_only_when_nothing_else(self):
        assert classify_cycle([StallType.IDLE, StallType.IDLE]) is StallType.IDLE
        assert classify_cycle([]) is StallType.IDLE

    def test_priority_lists_are_permutations(self):
        assert sorted(CYCLE_PRIORITY, key=lambda s: s.value) == sorted(
            INSTRUCTION_PRIORITY, key=lambda s: s.value
        )
        assert len(set(CYCLE_PRIORITY)) == len(StallType)

    def test_not_exact_inversion(self):
        """The paper notes the weak priority is NOT the strong one reversed."""
        inverted = tuple(reversed(INSTRUCTION_PRIORITY))
        assert CYCLE_PRIORITY != inverted


class TestDetailSelection:
    def test_detail_follows_winning_cause(self):
        causes = [
            (StallType.MEM_DATA, 42),
            (StallType.MEM_STRUCT, "mshr"),
            (StallType.MEM_DATA, 99),
        ]
        cause, detail = classify_cycle_with_detail(causes)
        assert cause is StallType.MEM_STRUCT
        assert detail == "mshr"

    def test_first_matching_instruction_supplies_detail(self):
        causes = [(StallType.MEM_DATA, 1), (StallType.MEM_DATA, 2)]
        cause, detail = classify_cycle_with_detail(causes)
        assert cause is StallType.MEM_DATA
        assert detail == 1

    def test_empty_is_idle(self):
        assert classify_cycle_with_detail([]) == (StallType.IDLE, None)


class TestAblationPolicies:
    def test_strong_policy_picks_strongest(self):
        causes = [StallType.MEM_STRUCT, StallType.SYNC]
        assert classify_cycle_strong(causes) is StallType.SYNC
        assert classify_cycle(causes) is StallType.MEM_STRUCT

    def test_strong_policy_no_stall(self):
        assert classify_cycle_strong([StallType.NO_STALL]) is StallType.NO_STALL

    def test_first_policy_order_dependent(self):
        assert (
            classify_cycle_first([StallType.SYNC, StallType.MEM_STRUCT])
            is StallType.SYNC
        )
        assert (
            classify_cycle_first([StallType.MEM_STRUCT, StallType.SYNC])
            is StallType.MEM_STRUCT
        )
        assert classify_cycle_first([]) is StallType.IDLE
