"""Tests for the windowed stall timeline extension."""

import pytest

from repro.core.stall_types import StallType
from repro.core.timeline import Timeline, render_timeline
from repro.sim.config import SystemConfig
from repro.system import run_workload
from repro.workloads.synthetic import StreamingWorkload


class TestTimelineBuckets:
    def test_single_cycle_records(self):
        tl = Timeline(window=10)
        tl.record(StallType.SYNC, start_cycle=3)
        tl.record(StallType.SYNC, start_cycle=12)
        assert tl.num_windows == 2
        assert tl.bucket(0).counts[StallType.SYNC] == 1
        assert tl.bucket(1).counts[StallType.SYNC] == 1

    def test_bulk_record_splits_across_windows(self):
        tl = Timeline(window=10)
        tl.record(StallType.MEM_DATA, start_cycle=5, n=20)
        assert tl.bucket(0).counts[StallType.MEM_DATA] == 5
        assert tl.bucket(1).counts[StallType.MEM_DATA] == 10
        assert tl.bucket(2).counts[StallType.MEM_DATA] == 5

    def test_bulk_equals_per_cycle(self):
        bulk = Timeline(window=7)
        bulk.record(StallType.IDLE, start_cycle=3, n=25)
        single = Timeline(window=7)
        for c in range(3, 28):
            single.record(StallType.IDLE, start_cycle=c)
        assert [b.counts for b in bulk.buckets()] == [
            b.counts for b in single.buckets()
        ]

    def test_total_matches_recorded(self):
        tl = Timeline(window=16)
        tl.record(StallType.SYNC, 0, 100)
        tl.record(StallType.NO_STALL, 100, 50)
        total = tl.total()
        assert total.counts[StallType.SYNC] == 100
        assert total.counts[StallType.NO_STALL] == 50

    def test_merge(self):
        a = Timeline(window=8)
        b = Timeline(window=8)
        a.record(StallType.SYNC, 0, 8)
        b.record(StallType.MEM_DATA, 8, 8)
        merged = a.merge(b)
        assert merged.bucket(0).counts[StallType.SYNC] == 8
        assert merged.bucket(1).counts[StallType.MEM_DATA] == 8

    def test_merge_window_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Timeline(8).merge(Timeline(16))

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            Timeline(0)

    def test_dominant_series(self):
        tl = Timeline(window=4)
        tl.record(StallType.SYNC, 0, 4)
        tl.record(StallType.NO_STALL, 4, 3)
        tl.record(StallType.MEM_DATA, 7, 1)
        assert tl.dominant_series() == [StallType.SYNC, StallType.NO_STALL]


class TestRendering:
    def test_render_shapes(self):
        tl = Timeline(window=4)
        tl.record(StallType.SYNC, 0, 8)
        text = render_timeline(tl, height=4)
        lines = text.splitlines()
        assert len(lines[0]) == 2  # two windows
        assert "S" in text
        assert "one column = 4 cycles" in text

    def test_render_empty(self):
        assert "empty" in render_timeline(Timeline(4))


class TestSystemIntegration:
    def test_timeline_totals_match_breakdown(self):
        cfg = SystemConfig(num_sms=2, timeline_window=128)
        r = run_workload(cfg, StreamingWorkload(num_tbs=2))
        assert r.timeline is not None
        assert r.timeline.total().counts == r.breakdown.counts

    def test_timeline_spans_execution(self):
        cfg = SystemConfig(num_sms=2, timeline_window=128)
        r = run_workload(cfg, StreamingWorkload(num_tbs=2))
        assert r.timeline.num_windows == -(-r.cycles // 128)

    def test_disabled_by_default(self):
        r = run_workload(SystemConfig(num_sms=2), StreamingWorkload(num_tbs=1))
        assert r.timeline is None
