"""Unit tests for the hybrid cycle/event engine.

Every test runs against both cores: the pure-Python oracle
(:class:`~repro.sim.engine.Engine`, binary heap) and the fast core's
calendar queue (:class:`~repro.sim.engine_fast.CalendarEngine`).  The two
must agree on every documented semantic -- time order, schedule-order tie
breaking, the same-cycle event lane, peek/stop behavior -- because the
fast core's byte-identity guarantee rests on this equivalence.
"""

import pytest

from repro.sim.engine import Engine
from repro.sim.engine_fast import CalendarEngine


@pytest.fixture(params=[Engine, CalendarEngine], ids=["python", "fast"])
def engine_cls(request):
    return request.param


class Counter:
    """Tickable that counts its ticks and can deactivate itself."""

    def __init__(self, engine, stop_after=None):
        self.engine = engine
        self.ticks = 0
        self.tid = engine.register(self)
        self.stop_after = stop_after

    def start(self):
        self.engine.activate(self.tid)

    def tick(self):
        self.ticks += 1
        if self.stop_after is not None and self.ticks >= self.stop_after:
            self.engine.deactivate(self.tid)


def test_events_fire_in_time_order(engine_cls):
    engine = engine_cls()
    order = []
    engine.schedule(5, lambda: order.append("b"))
    engine.schedule(2, lambda: order.append("a"))
    engine.schedule(9, lambda: order.append("c"))
    engine.run()
    assert order == ["a", "b", "c"]
    assert engine.now == 9


def test_ties_break_in_schedule_order(engine_cls):
    engine = engine_cls()
    order = []
    for name in "abcd":
        engine.schedule(3, lambda n=name: order.append(n))
    engine.run()
    assert order == list("abcd")


def test_clock_jumps_over_idle_gaps(engine_cls):
    engine = engine_cls()
    seen = []
    engine.schedule(1_000_000, lambda: seen.append(engine.now))
    engine.run()
    assert seen == [1_000_000]
    # No per-cycle work happened: only one event processed.
    assert engine.events_processed == 1


def test_tickables_tick_every_cycle_while_active(engine_cls):
    engine = engine_cls()
    counter = Counter(engine, stop_after=10)
    counter.start()
    engine.run()
    assert counter.ticks == 10
    assert engine.now == 10


def test_event_wakes_before_tick_same_cycle(engine_cls):
    """An event at cycle W runs before W's ticks (wake-up semantics)."""
    engine = engine_cls()
    log = []

    class T:
        def __init__(self):
            self.tid = engine.register(self)

        def tick(self):
            log.append(("tick", engine.now))
            engine.deactivate(self.tid)

    t = T()
    engine.schedule(7, lambda: (log.append(("event", engine.now)), engine.activate(t.tid)))
    engine.run()
    assert log == [("event", 7), ("tick", 7)]


def test_stop_ends_run(engine_cls):
    engine = engine_cls()
    engine.schedule(3, engine.stop)
    engine.schedule(100, lambda: pytest.fail("should not run"))
    assert engine.run() == 3


def test_negative_delay_rejected(engine_cls):
    engine = engine_cls()
    with pytest.raises(ValueError):
        engine.schedule(-1, lambda: None)


def test_schedule_at_past_rejected(engine_cls):
    engine = engine_cls()
    engine.schedule(5, lambda: None)
    engine.run()
    with pytest.raises(ValueError):
        engine.schedule_at(2, lambda: None)


def test_livelock_guard_trips(engine_cls):
    engine = engine_cls()
    counter = Counter(engine)  # never deactivates
    counter.start()
    with pytest.raises(RuntimeError, match="livelock"):
        engine.run(max_cycles=100)


def test_events_during_tick_run_next_iteration(engine_cls):
    engine = engine_cls()
    log = []

    class T:
        def __init__(self):
            self.tid = engine.register(self)
            self.ticked = False

        def tick(self):
            if not self.ticked:
                self.ticked = True
                engine.schedule(0, lambda: log.append(engine.now))
            else:
                engine.deactivate(self.tid)

    t = T()
    engine.activate(t.tid)
    engine.run()
    assert log == [1]  # zero-delay event from tick at 0 lands at cycle 1


def test_run_returns_immediately_with_no_work(engine_cls):
    engine = engine_cls()
    assert engine.run() == 0


def test_register_stores_tickable_for_activate(engine_cls):
    """register() remembers the tickable, so activate only needs the id."""
    engine = engine_cls()
    a, b = Counter(engine, stop_after=3), Counter(engine, stop_after=5)
    assert (a.tid, b.tid) == (0, 1)
    a.start()
    b.start()
    engine.run()
    assert (a.ticks, b.ticks) == (3, 5)


def test_activate_unregistered_id_rejected(engine_cls):
    engine = engine_cls()
    with pytest.raises(KeyError):
        engine.activate(99)


def test_tick_order_is_ascending_tid_after_churn(engine_cls):
    """The incrementally maintained active order must stay ascending-tid
    deterministic through arbitrary activate/deactivate churn."""
    engine = engine_cls()
    log = []

    class T:
        def __init__(self):
            self.tid = engine.register(self)

        def tick(self):
            log.append(self.tid)
            engine.deactivate(self.tid)

    ts = [T() for _ in range(5)]
    # activate out of order, deactivate some, re-activate
    for t in (ts[3], ts[0], ts[4], ts[1], ts[2]):
        engine.activate(t.tid)
    engine.deactivate(ts[4].tid)
    engine.activate(ts[4].tid)
    engine.run()
    assert log == [0, 1, 2, 3, 4]


def test_mid_cycle_activation_ticks_next_cycle(engine_cls):
    """A peer activated during the tick phase must not tick until the next
    cycle, even if it was active earlier and has a smaller tid."""
    engine = engine_cls()
    log = []

    class A:
        def __init__(self):
            self.tid = engine.register(self)

        def tick(self):
            log.append(("a", engine.now))
            engine.deactivate(self.tid)

    class B:
        def __init__(self, peer):
            self.tid = engine.register(self)
            self.peer = peer

        def tick(self):
            log.append(("b", engine.now))
            engine.activate(self.peer.tid)  # mid-cycle wake of a lower tid
            engine.deactivate(self.tid)

    a = A()
    b = B(a)
    # a was active once before, so a stale order entry exists
    engine.activate(a.tid)
    engine.run()
    assert log[0] == ("a", 0)
    engine.activate(b.tid)
    log.clear()
    engine.run()
    # b ticks alone in its cycle; a only ticks the following cycle
    assert log == [("b", 1), ("a", 2)]


def test_activation_idempotent_and_wakeups_counted(engine_cls):
    engine = engine_cls()
    c = Counter(engine, stop_after=2)
    engine.activate(c.tid)
    engine.activate(c.tid)  # double activation is a no-op
    assert engine.wakeups == 1
    engine.run()
    assert c.ticks == 2


class TestScheduleAtAndPeek:
    """Edge cases of schedule_at/peek_next_event: same-cycle ordering,
    scheduling at the current cycle, and behavior around stop()."""

    def test_schedule_at_ties_interleave_with_schedule_in_call_order(self, engine_cls):
        """schedule_at and schedule share one sequence counter, so events
        landing on the same cycle fire in call order regardless of API."""
        engine = engine_cls()
        order = []
        engine.schedule_at(4, lambda: order.append("at-first"))
        engine.schedule(4, lambda: order.append("delay"))
        engine.schedule_at(4, lambda: order.append("at-second"))
        engine.run()
        assert order == ["at-first", "delay", "at-second"]

    def test_schedule_at_current_cycle_from_event_runs_same_cycle(self, engine_cls):
        """An event scheduled *at the current cycle* from inside an event
        callback joins the same cycle's batch drain."""
        engine = engine_cls()
        log = []
        engine.schedule(5, lambda: engine.schedule_at(
            engine.now, lambda: log.append(engine.now)))
        engine.run()
        assert log == [5]

    def test_schedule_at_current_cycle_from_tick_runs_next_drain(self, engine_cls):
        """From a tick, 'now' has not advanced yet, so an event at the
        current cycle is only seen by the next iteration's drain -- it runs
        with the clock already at cycle+1 (mirrors zero-delay schedule)."""
        engine = engine_cls()
        log = []

        class T:
            def __init__(self):
                self.tid = engine.register(self)

            def tick(self):
                engine.schedule_at(engine.now, lambda: log.append(engine.now))
                engine.deactivate(self.tid)

        t = T()
        engine.activate(t.tid)
        engine.run()
        assert log == [1]

    def test_stop_mid_drain_finishes_the_cycle_batch(self, engine_cls):
        """stop() requests the end of the run *after* the current cycle:
        events already due this cycle still execute."""
        engine = engine_cls()
        log = []
        engine.schedule(3, lambda: (log.append("a"), engine.stop()))
        engine.schedule(3, lambda: log.append("b"))  # same cycle, after stop
        engine.schedule(9, lambda: log.append("never"))
        assert engine.run() == 3
        assert log == ["a", "b"]

    def test_run_after_stop_resumes_with_surviving_events(self, engine_cls):
        """run() clears the stop latch; events beyond the stop point stay
        queued and a second run() delivers them."""
        engine = engine_cls()
        log = []
        engine.schedule(2, engine.stop)
        engine.schedule(7, lambda: log.append(engine.now))
        assert engine.run() == 2
        assert log == []
        assert engine.peek_next_event() == 7
        assert engine.run() == 7
        assert log == [7]

    def test_schedule_at_exactly_now_never_raises(self, engine_cls):
        """t == now is valid (only t < now is the past)."""
        engine = engine_cls()
        engine.schedule(4, lambda: None)
        engine.run()
        fired = []
        engine.schedule_at(4, lambda: fired.append(True))  # t == now
        engine.run()
        assert fired == [True]

    def test_peek_next_event_reports_earliest_pending(self, engine_cls):
        engine = engine_cls()
        assert engine.peek_next_event() is None
        engine.schedule(8, lambda: None)
        engine.schedule(3, lambda: None)
        engine.schedule_at(5, lambda: None)
        assert engine.peek_next_event() == 3
        engine.run()
        assert engine.peek_next_event() is None

    def test_peek_is_not_consumed_after_stop(self, engine_cls):
        """Events left behind by a stopped run remain visible to peek."""
        engine = engine_cls()
        engine.schedule(1, engine.stop)
        engine.schedule(10, lambda: None)
        engine.run()
        assert engine.peek_next_event() == 10


def test_engine_stats_group(engine_cls):
    engine = engine_cls()
    c = Counter(engine, stop_after=4)
    c.start()
    engine.schedule(2, lambda: None)
    engine.run()
    snap = engine.stats()
    assert snap["cycles"] == 4
    assert snap["events"] == engine.events_processed == 1
    assert snap["wakeups"] == 1
    engine.reset_stats()
    assert engine.stats()["cycles"] == 0


class TestScheduleCall:
    """The one-argument fast lane must order exactly like schedule():
    both engines share one logical sequence, whatever the storage."""

    def test_interleaves_with_schedule_in_call_order(self, engine_cls):
        engine = engine_cls()
        order = []
        engine.schedule(4, lambda: order.append("a"))
        engine.schedule_call(4, order.append, "b")
        engine.schedule(4, lambda: order.append("c"))
        engine.schedule_call(4, order.append, "d")
        engine.run()
        assert order == ["a", "b", "c", "d"]

    def test_negative_delay_rejected(self, engine_cls):
        engine = engine_cls()
        with pytest.raises(ValueError):
            engine.schedule_call(-1, print, "boom")

    def test_same_cycle_lane_from_callback(self, engine_cls):
        """A schedule_call landing on the cycle being drained joins the
        same drain (the calendar queue's O(1) same-cycle lane)."""
        engine = engine_cls()
        log = []
        engine.schedule(3, lambda: engine.schedule_call(0, log.append, engine.now))
        engine.schedule(3, lambda: log.append("tail"))
        engine.run()
        # The append joins the end of the in-flight batch, after everything
        # already scheduled for the cycle -- on both cores.
        assert log == ["tail", 3]

    def test_counts_as_one_event(self, engine_cls):
        engine = engine_cls()
        engine.schedule_call(2, lambda _: None, None)
        engine.run()
        assert engine.events_processed == 1


class TestCalendarQueueInternals:
    """Fast-core-only behavior: bucket lifecycle and the freelist."""

    def test_buckets_are_recycled(self):
        engine = CalendarEngine()
        for t in (1, 2, 3):
            engine.schedule(t, lambda: None)
        engine.run()
        # All three buckets retired to the freelist, none left live.
        assert engine._buckets == {}
        assert engine._times == []
        assert len(engine._free_buckets) == 3
        engine.schedule(1, lambda: None)
        # Scheduling reuses a retired list instead of allocating.
        assert len(engine._free_buckets) == 2
        engine.run()

    def test_peek_tracks_live_buckets_only(self):
        engine = CalendarEngine()
        engine.schedule(5, engine.stop)
        engine.schedule(9, lambda: None)
        assert engine.peek_next_event() == 5
        engine.run()
        assert engine.peek_next_event() == 9
        engine.run()
        assert engine.peek_next_event() is None

    def test_many_events_one_cycle_single_bucket(self):
        engine = CalendarEngine()
        hits = []
        for i in range(100):
            engine.schedule_call(7, hits.append, i)
        assert len(engine._times) == 1  # one bucket, not 100 heap entries
        engine.run()
        assert hits == list(range(100))
        assert engine.events_processed == 100
