"""Tests for the CI perf gate (benchmarks/perf_gate.py): row matching by
scenario key, tolerance-band regression detection, new-row reporting, and
the loud failure on an empty comparison."""

import importlib.util
import json
import os

import pytest

_GATE = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "benchmarks", "perf_gate.py",
)
spec = importlib.util.spec_from_file_location("perf_gate", _GATE)
perf_gate = importlib.util.module_from_spec(spec)
spec.loader.exec_module(perf_gate)


def artifact(path, rows, campaign_cpm=None):
    payload = {
        "unit": "simulated GPU cycles per host second",
        "scenarios": [
            {"scenario": name, "key": key, "workload": "w",
             "cycles": 1000, "wall_clock_s": 1.0, "cycles_per_sec": cps}
            for name, key, cps in rows
        ],
    }
    if campaign_cpm is not None:
        payload["campaign_cells"] = {
            "campaign": "fleet", "cells": 20,
            "planned": {"cells_per_min": campaign_cpm, "wall_clock_s": 1.0,
                        "executed": 8, "replayed": 12, "cached": 0},
            "serial": {"cells_per_min": campaign_cpm / 1.2, "wall_clock_s": 1.2,
                       "executed": 20, "replayed": 0, "cached": 0},
            "speedup": 1.2,
        }
    path.write_text(json.dumps(payload))
    return str(path)


class TestLoadRows:
    def test_keyed_by_scenario_key(self, tmp_path):
        path = artifact(tmp_path / "a.json", [("s1", "k1", 100.0)])
        assert set(perf_gate.load_rows(path)) == {"k1"}

    def test_rows_without_rate_dropped(self, tmp_path):
        path = artifact(tmp_path / "a.json",
                        [("s1", "k1", 100.0), ("s2", "k2", None)])
        assert set(perf_gate.load_rows(path)) == {"k1"}


class TestGate:
    def run(self, tmp_path, fresh_rows, committed_rows, tolerance="0.35"):
        fresh = artifact(tmp_path / "fresh.json", fresh_rows)
        committed = artifact(tmp_path / "committed.json", committed_rows)
        return perf_gate.main(
            ["--fresh", fresh, "--committed", committed, "--tolerance", tolerance]
        )

    def test_ok_within_tolerance(self, tmp_path, capsys):
        rc = self.run(tmp_path,
                      [("s1", "k1", 60.0), ("s2", "k2", 140.0)],
                      [("s1", "k1", 100.0), ("s2", "k2", 100.0)])
        assert rc == 0
        assert "perf gate OK" in capsys.readouterr().out

    def test_regression_fails(self, tmp_path, capsys):
        rc = self.run(tmp_path,
                      [("s1", "k1", 20.0)],
                      [("s1", "k1", 100.0)])
        assert rc == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_new_rows_reported_not_failed(self, tmp_path, capsys):
        rc = self.run(tmp_path,
                      [("s1", "k1", 90.0), ("new", "k9", 50.0)],
                      [("s1", "k1", 100.0)])
        assert rc == 0
        assert "new row" in capsys.readouterr().out

    def test_no_overlap_is_loud(self, tmp_path, capsys):
        rc = self.run(tmp_path, [("s1", "k1", 90.0)], [("s2", "k2", 100.0)])
        assert rc == 2
        assert "no overlapping rows" in capsys.readouterr().err

    def test_empty_fresh_is_loud(self, tmp_path, capsys):
        rc = self.run(tmp_path, [], [("s1", "k1", 100.0)])
        assert rc == 2

    def test_missing_file(self, tmp_path, capsys):
        rc = perf_gate.main(["--fresh", str(tmp_path / "nope.json")])
        assert rc == 2

    def test_bad_tolerance_rejected(self, tmp_path):
        fresh = artifact(tmp_path / "f.json", [("s1", "k1", 1.0)])
        with pytest.raises(SystemExit):
            perf_gate.main(["--fresh", fresh, "--tolerance", "1.5"])


class TestCampaignSection:
    def run(self, tmp_path, fresh_cpm, committed_cpm,
            fresh_rows=(("s1", "k1", 100.0),),
            committed_rows=(("s1", "k1", 100.0),)):
        fresh = artifact(tmp_path / "fresh.json", list(fresh_rows),
                         campaign_cpm=fresh_cpm)
        committed = artifact(tmp_path / "committed.json", list(committed_rows),
                             campaign_cpm=committed_cpm)
        return perf_gate.main(["--fresh", fresh, "--committed", committed])

    def test_campaign_within_tolerance_ok(self, tmp_path, capsys):
        rc = self.run(tmp_path, fresh_cpm=900.0, committed_cpm=1000.0)
        assert rc == 0
        out = capsys.readouterr().out
        assert "campaign:fleet" in out
        assert "8 executed + 12 replayed" in out

    def test_campaign_collapse_fails(self, tmp_path, capsys):
        rc = self.run(tmp_path, fresh_cpm=100.0, committed_cpm=1000.0)
        assert rc == 1
        assert "cells/min" in capsys.readouterr().err

    def test_missing_section_skips_cleanly(self, tmp_path, capsys):
        rc = self.run(tmp_path, fresh_cpm=None, committed_cpm=1000.0)
        assert rc == 0
        assert (
            "campaign_cells: section missing from fresh artifact(s); skipped"
            in capsys.readouterr().out
        )
        rc = self.run(tmp_path, fresh_cpm=900.0, committed_cpm=None)
        assert rc == 0
        assert (
            "campaign_cells: section missing from committed artifact(s)"
            in capsys.readouterr().out
        )

    def test_campaign_alone_satisfies_overlap(self, tmp_path, capsys):
        """A bench session that only ran the campaign benchmark still
        gates something instead of dying on the no-overlap check."""
        rc = self.run(tmp_path, fresh_cpm=900.0, committed_cpm=1000.0,
                      fresh_rows=(("s9", "k9", 100.0),))
        assert rc == 0


class TestAgainstCommittedArtifact:
    def test_committed_artifact_gates_itself(self, tmp_path, capsys):
        """The tracked BENCH_engine.json compared against itself passes --
        the exact configuration CI runs after refreshing rows."""
        committed = os.path.join(os.path.dirname(_GATE), "artifacts",
                                 "BENCH_engine.json")
        rc = perf_gate.main(["--fresh", committed, "--committed", committed])
        assert rc == 0
