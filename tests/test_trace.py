"""Tests for the trace capture & replay subsystem (repro.trace).

The two load-bearing guarantees:

* **determinism** -- recording the same workload twice with the same seed
  yields byte-identical trace files;
* **exactness** -- replaying a trace under the recorded configuration
  reproduces the execution-driven run's memory-side statistics (per-level
  hits/misses/loads/stores, MEM_DATA/MEM_STRUCT attribution, cycles)
  *exactly*, without running the GPU compute frontend.
"""

import gzip
import json

import pytest

from repro.cli import main
from repro.experiments.executor import execute
from repro.experiments.spec import Scenario, Sweep
from repro.sim.config import LocalMemory, SystemConfig
from repro.system import SimResult, run_workload
from repro.trace import (
    TraceFormatError,
    TraceReplayWorkload,
    compare_replay,
    load_trace,
    record_workload,
    replay_trace,
    save_trace,
)
from repro.workloads import make_workload


def _record(name, wargs, cfg_overrides=None):
    config = SystemConfig().scaled(**(cfg_overrides or {}))
    workload = make_workload(name, **wargs)
    return record_workload(config, workload, name=name, workload_args=wargs)


def _streaming_args():
    return "streaming", {"num_tbs": 2, "warps_per_tb": 1}, {"num_sms": 2}


# ---------------------------------------------------------------------------
# format: save/load round trip, integrity, versioning
# ---------------------------------------------------------------------------

class TestFormat:
    def test_round_trip(self, tmp_path):
        _, trace = _record(*_streaming_args())
        path = str(tmp_path / "s.gsitrace")
        sha = save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.sha256 == sha
        assert loaded.workload == "streaming"
        assert loaded.num_sms == 2
        assert loaded.num_events == trace.num_events
        assert loaded.config == trace.config
        assert loaded.teardown == trace.teardown

    def test_corrupt_file_rejected(self, tmp_path):
        path = str(tmp_path / "bad.gsitrace")
        with open(path, "wb") as fh:
            fh.write(b"not a gzip")
        with pytest.raises(TraceFormatError):
            load_trace(path)

    def test_tampered_content_rejected(self, tmp_path):
        _, trace = _record(*_streaming_args())
        path = str(tmp_path / "s.gsitrace")
        save_trace(trace, path)
        raw = gzip.decompress(open(path, "rb").read())
        header, body = raw.split(b"\n", 1)
        data = json.loads(body)
        data["cycles"] += 1  # tamper without re-hashing
        tampered = json.dumps(data, sort_keys=True, separators=(",", ":")).encode()
        with open(path, "wb") as fh:
            with gzip.GzipFile(filename="", fileobj=fh, mode="wb") as gz:
                gz.write(header + b"\n" + tampered)
        with pytest.raises(TraceFormatError, match="integrity"):
            load_trace(path)

    def test_wrong_version_rejected(self, tmp_path):
        _, trace = _record(*_streaming_args())
        path = str(tmp_path / "s.gsitrace")
        save_trace(trace, path)
        raw = gzip.decompress(open(path, "rb").read())
        header, body = raw.split(b"\n", 1)
        data = json.loads(header)
        data["version"] = 99
        with open(path, "wb") as fh:
            with gzip.GzipFile(filename="", fileobj=fh, mode="wb") as gz:
                gz.write(json.dumps(data).encode() + b"\n" + body)
        with pytest.raises(TraceFormatError, match="version"):
            load_trace(path)

    def test_wrong_format_rejected(self, tmp_path):
        path = str(tmp_path / "s.gsitrace")
        with open(path, "wb") as fh:
            with gzip.GzipFile(filename="", fileobj=fh, mode="wb") as gz:
                gz.write(b'{"format": "something-else", "version": 1}\n{}')
        with pytest.raises(TraceFormatError, match="not a gsi-trace"):
            load_trace(path)

    @staticmethod
    def _write_external(tmp_path, events):
        """Hand-write a hash-valid trace with plain-JSON event lists, the
        format externally generated traces use."""
        import hashlib

        body = json.dumps(
            {
                "workload": "external",
                "workload_args": {},
                "config": SystemConfig(num_sms=1).to_dict(),
                "cycles": 10,
                "instructions": 1,
                "warm_lines": [],
                "teardown": {"cycle": 10, "phase": "tick", "trigger": None},
                "sms": [{"events": events, "spans": []}],
                "recorded_stats": {},
                "recorded_breakdown": {},
            }
        ).encode()
        header = json.dumps(
            {"format": "gsi-trace", "version": 1,
             "sha256": hashlib.sha256(body).hexdigest()}
        ).encode()
        path = str(tmp_path / "external.gsitrace")
        with open(path, "wb") as fh:
            with gzip.GzipFile(filename="", fileobj=fh, mode="wb") as gz:
                gz.write(header + b"\n" + body)
        return path

    def test_external_plain_json_trace_replays(self, tmp_path):
        # one single-line load at cycle 2: cycle, warp, LOAD, tag, dep, n, line
        path = self._write_external(tmp_path, [2, 0, 0, 1, 0, 1, 64])
        result = replay_trace(load_trace(path))
        assert result.stats["l1"]["sm0"]["load_misses"] == 1

    def test_truncated_external_stream_rejected(self, tmp_path):
        # a LOAD record cut off before its line list
        path = self._write_external(tmp_path, [2, 0, 0, 1])
        with pytest.raises(TraceFormatError, match="truncated"):
            load_trace(path)


# ---------------------------------------------------------------------------
# determinism (satellite): byte-identical re-record, same-process
# ---------------------------------------------------------------------------

class TestDeterminism:
    def test_recording_twice_is_byte_identical(self, tmp_path):
        paths = []
        for i in range(2):
            _, trace = _record(*_streaming_args())
            path = str(tmp_path / ("take%d.gsitrace" % i))
            save_trace(trace, path)
            paths.append(path)
        a, b = (open(p, "rb").read() for p in paths)
        assert a == b

    def test_recording_does_not_perturb_the_run(self):
        name, wargs, cfg = _streaming_args()
        plain = run_workload(
            SystemConfig().scaled(**cfg), make_workload(name, **wargs)
        )
        recorded, _ = _record(name, wargs, cfg)
        assert plain.cycles == recorded.cycles
        assert plain.stats == recorded.stats
        assert plain.breakdown.to_dict() == recorded.breakdown.to_dict()


# ---------------------------------------------------------------------------
# exactness (tentpole + satellite): replay == execution, memory side
# ---------------------------------------------------------------------------

EXACTNESS_CASES = [
    ("streaming", {"num_tbs": 2, "warps_per_tb": 1}, {"num_sms": 2}),
    # UTS is the paper's fig-6.1 workload: lock atomics, release/acquire
    # semantics, and an event-phase teardown trigger.
    ("uts", {"total_nodes": 30, "warps_per_tb": 2}, {"num_sms": 4}),
    ("uts", {"total_nodes": 30, "warps_per_tb": 2},
     {"num_sms": 4, "protocol": "denovo"}),
    # L2-warmed workload with a frontend-triggered (approximated) teardown.
    ("stencil_global", {"warps_per_tb": 2}, {"num_sms": 4}),
]


class TestReplayExactness:
    @pytest.mark.parametrize("name,wargs,cfg", EXACTNESS_CASES)
    def test_memory_side_stats_reproduce_exactly(self, name, wargs, cfg):
        result, trace = _record(name, wargs, cfg)
        replayed = replay_trace(trace)
        mismatches = compare_replay(result, replayed)
        assert not mismatches, "\n".join(mismatches)
        assert replayed.cycles == result.cycles
        assert replayed.instructions == result.instructions

    def test_replay_resolves_service_locations_live(self):
        """The mem-data sub-taxonomy must come from the replayed hierarchy,
        not be copied from the recording."""
        result, trace = _record(
            "uts", {"total_nodes": 30, "warps_per_tb": 2}, {"num_sms": 4}
        )
        assert sum(result.breakdown.mem_data.values()) > 0
        replayed = replay_trace(trace)
        assert replayed.breakdown.mem_data == result.breakdown.mem_data
        assert replayed.stats["replay"]["events_injected"] == trace.num_events

    def test_replay_is_deterministic(self):
        _, trace = _record(*_streaming_args())
        a = replay_trace(trace, overrides={"mshr_entries": 4})
        b = replay_trace(trace, overrides={"mshr_entries": 4})
        assert a.cycles == b.cycles
        assert a.stats == b.stats


# ---------------------------------------------------------------------------
# replay under perturbed configurations
# ---------------------------------------------------------------------------

class TestReplayOverrides:
    def test_overrides_reach_the_replayed_machine(self):
        _, trace = _record(*_streaming_args())
        replayed = replay_trace(
            trace, overrides={"mshr_entries": 2, "store_buffer_entries": 2}
        )
        assert replayed.config.mshr_entries == 2
        assert replayed.config.store_buffer_entries == 2
        # the rest of the machine stays as recorded
        assert replayed.config.num_sms == 2

    def test_small_store_buffer_back_pressures(self):
        # Two warps per SM contend for the shrunken buffer: replay blocks.
        # (A single-warp stream no longer blocks at any size -- an
        # oversized store is admitted whole and drip-fed, matching the
        # execution-side serialization -- so contention provides the
        # back-pressure here.)
        _, trace = _record(
            "streaming", {"num_tbs": 2, "warps_per_tb": 2}, {"num_sms": 2}
        )
        replayed = replay_trace(trace, overrides={"store_buffer_entries": 1})
        assert replayed.stats["replay"]["blocked_cycles"]["store_buffer_full"] > 0

    def test_oversized_store_burst_drip_feeds(self):
        # One warp per SM, 2-line stores, 1-entry buffer: every store is an
        # oversized burst.  It must complete (no deadlock) and pay for the
        # serialization in cycles rather than report per-line blocking.
        _, trace = _record(*_streaming_args())
        base = replay_trace(trace)
        tiny = replay_trace(trace, overrides={"store_buffer_entries": 1})
        assert tiny.cycles > base.cycles

    def test_num_sms_cannot_be_swept(self):
        _, trace = _record(*_streaming_args())
        with pytest.raises(ValueError, match="num_sms"):
            replay_trace(trace, overrides={"num_sms": 4})

    def test_unknown_override_field_is_a_value_error(self):
        _, trace = _record(*_streaming_args())
        with pytest.raises(ValueError, match="bad replay override"):
            replay_trace(trace, overrides={"bogus_field": 3})

    def test_local_memory_cannot_be_swept(self):
        _, trace = _record(*_streaming_args())
        with pytest.raises(ValueError, match="local-memory"):
            replay_trace(trace, overrides={"local_memory": "scratchpad"})

    def test_recording_local_memory_config_refused(self):
        from repro.trace import TraceRecorder
        from repro.system import System

        workload = make_workload("implicit_dma", warps_per_tb=4)
        config = workload.configure(SystemConfig())
        assert config.local_memory is not LocalMemory.NONE
        with pytest.raises(ValueError, match="local-memory"):
            TraceRecorder(System(config))


# ---------------------------------------------------------------------------
# the "trace" workload: scenario specs, sweeps, executor, cache keys
# ---------------------------------------------------------------------------

class TestTraceWorkload:
    @pytest.fixture
    def trace_path(self, tmp_path):
        _, trace = _record(*_streaming_args())
        path = str(tmp_path / "s.gsitrace")
        save_trace(trace, path)
        return path

    def test_scenario_replay_matches_direct_execution(self, trace_path):
        name, wargs, cfg = _streaming_args()
        execution = run_workload(
            SystemConfig().scaled(**cfg), make_workload(name, **wargs)
        )
        record = execute([Scenario("replayed", "trace", {"path": trace_path})])[0]
        mismatches = compare_replay(execution, record.result)
        assert not mismatches, "\n".join(mismatches)

    def test_sweep_grid_over_one_trace(self, trace_path):
        base = Scenario("replay", "trace", {"path": trace_path})
        scenarios = Sweep(base, {"mshr_entries": [2, 4]}).expand()
        records = execute(scenarios)
        assert [r.scenario.name for r in records] == [
            "replay/mshr_entries=2", "replay/mshr_entries=4",
        ]
        assert records[0].result.config.mshr_entries == 2
        assert records[1].result.config.mshr_entries == 4
        # the sweep result survives the executor's JSON round trip
        rehydrated = SimResult.from_dict(records[0].result.to_dict())
        assert rehydrated.stats["replay"]["source_sha256"]

    def test_cache_key_tracks_trace_content(self, trace_path):
        scenario = Scenario("replay", "trace", {"path": trace_path})
        key_before = scenario.key()
        _, other = _record("streaming", {"num_tbs": 3, "warps_per_tb": 1},
                           {"num_sms": 2})
        save_trace(other, trace_path)  # same path, different content
        assert Scenario("replay", "trace", {"path": trace_path}).key() != key_before

    def test_cache_round_trip(self, trace_path, tmp_path):
        cache = str(tmp_path / "cache")
        scenario = Scenario("replay", "trace", {"path": trace_path},
                            config={"mshr_entries": 4})
        first = execute([scenario], cache_dir=cache)[0]
        second = execute([scenario], cache_dir=cache)[0]
        assert not first.cached and second.cached
        assert first.result.to_dict() == second.result.to_dict()

    def test_missing_file_fails_validation(self):
        with pytest.raises(ValueError, match="not found"):
            Scenario("x", "trace", {"path": "/nonexistent.gsitrace"}).validate()

    def test_build_refuses_kernel_path(self, trace_path):
        workload = TraceReplayWorkload(trace_path)
        with pytest.raises(TypeError, match="replay"):
            workload.build(object())


# ---------------------------------------------------------------------------
# CLI: repro trace record / replay / info
# ---------------------------------------------------------------------------

class TestTraceCli:
    def test_record_replay_verify_info(self, tmp_path, capsys):
        path = str(tmp_path / "s.gsitrace")
        assert main(["trace", "record", "streaming", "--sms", "2",
                     "-o", path]) == 0
        out = capsys.readouterr().out
        assert "trace: %s" % path in out

        assert main(["trace", "replay", path, "--verify"]) == 0
        assert "verify OK" in capsys.readouterr().out

        assert main(["trace", "info", path]) == 0
        out = capsys.readouterr().out
        assert "streaming" in out and "sha256" in out

    def test_replay_with_overrides(self, tmp_path, capsys):
        path = str(tmp_path / "s.gsitrace")
        assert main(["trace", "record", "streaming", "--sms", "2",
                     "-o", path]) == 0
        capsys.readouterr()
        assert main(["trace", "replay", path, "--mshr", "4",
                     "--set", "l2_access_latency=40"]) == 0
        assert "overrides" in capsys.readouterr().out

    def test_verify_with_overrides_rejected(self, tmp_path, capsys):
        path = str(tmp_path / "s.gsitrace")
        main(["trace", "record", "streaming", "--sms", "2", "-o", path])
        capsys.readouterr()
        assert main(["trace", "replay", path, "--verify", "--mshr", "4"]) == 2

    def test_unknown_set_field_exits_cleanly(self, tmp_path, capsys):
        path = str(tmp_path / "s.gsitrace")
        main(["trace", "record", "streaming", "--sms", "2", "-o", path])
        capsys.readouterr()
        assert main(["trace", "replay", path, "--set", "bogus_field=3"]) == 2
        assert "bad replay override" in capsys.readouterr().err

    def test_record_to_unwritable_path_exits_cleanly(self, capsys):
        assert main(["trace", "record", "streaming", "--sms", "2",
                     "-o", "/nonexistent-dir/x.gsitrace"]) == 2
        assert "error" in capsys.readouterr().err

    def test_record_local_memory_workload_rejected(self, tmp_path, capsys):
        path = str(tmp_path / "x.gsitrace")
        assert main(["trace", "record", "implicit_dma", "-o", path]) == 2
        assert "local-memory" in capsys.readouterr().err

    def test_replay_unreadable_file(self, tmp_path, capsys):
        bad = str(tmp_path / "bad.gsitrace")
        with open(bad, "w") as fh:
            fh.write("junk")
        assert main(["trace", "replay", bad]) == 2
        assert "error" in capsys.readouterr().err
