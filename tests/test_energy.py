"""Tests for the activity-based energy/traffic accounting extension."""

import pytest

from repro.core.energy import EnergyModel, EnergyReport, compare_energy, estimate_energy
from repro.sim.config import SystemConfig
from repro.system import run_workload
from repro.workloads.synthetic import ComputeHeavyWorkload, StreamingWorkload


@pytest.fixture(scope="module")
def streaming_result():
    return run_workload(SystemConfig(num_sms=2), StreamingWorkload(num_tbs=2))


class TestEnergyReport:
    def test_total_is_sum_of_components(self, streaming_result):
        report = estimate_energy(streaming_result)
        assert report.total_pj == pytest.approx(sum(report.components.values()))
        assert report.total_nj == pytest.approx(report.total_pj / 1000.0)

    def test_fractions_sum_to_one(self, streaming_result):
        report = estimate_energy(streaming_result)
        assert sum(report.fraction(c) for c in report.components) == pytest.approx(1.0)

    def test_rows_sorted_descending(self, streaming_result):
        rows = estimate_energy(streaming_result).rows()
        values = [v for _, v in rows]
        assert values == sorted(values, reverse=True)

    def test_render_mentions_traffic(self, streaming_result):
        text = estimate_energy(streaming_result).render()
        assert "network traffic" in text
        assert "nJ total" in text

    def test_empty_report_is_safe(self):
        report = EnergyReport()
        assert report.total_pj == 0
        assert report.fraction("dram") == 0.0


class TestModelSensitivity:
    def test_custom_model_scales_components(self, streaming_result):
        cheap = estimate_energy(streaming_result, EnergyModel(dram_access=0.0))
        rich = estimate_energy(streaming_result, EnergyModel(dram_access=5000.0))
        assert rich.components["dram"] >= cheap.components["dram"]

    def test_traffic_counters_track_mesh(self, streaming_result):
        report = estimate_energy(streaming_result)
        assert report.traffic_messages == streaming_result.stats["mesh"]["messages"]
        assert report.traffic_hops >= report.traffic_messages  # >=1 hop avg here


class TestWorkloadContrast:
    def test_memory_bound_spends_more_on_memory_than_compute_bound(self):
        mem = run_workload(SystemConfig(num_sms=2), StreamingWorkload(num_tbs=2))
        cpu = run_workload(SystemConfig(num_sms=2), ComputeHeavyWorkload())
        mem_rep = estimate_energy(mem)
        cpu_rep = estimate_energy(cpu)
        mem_frac = mem_rep.fraction("l2") + mem_rep.fraction("dram") + mem_rep.fraction("noc")
        cpu_frac = cpu_rep.fraction("l2") + cpu_rep.fraction("dram") + cpu_rep.fraction("noc")
        assert mem_frac > cpu_frac

    def test_compare_energy_table(self):
        a = run_workload(SystemConfig(num_sms=2), StreamingWorkload(num_tbs=2))
        b = run_workload(SystemConfig(num_sms=2), ComputeHeavyWorkload())
        text = compare_energy({"stream": a, "compute": b})
        assert "TOTAL" in text
        assert "stream" in text and "compute" in text
