"""Unit tests for warp schedulers and compute units."""

import pytest

from repro.gpu.compute_unit import ComputeUnits
from repro.gpu.scheduler import GreedyThenOldest, LooseRoundRobin, make_scheduler
from repro.sim.config import SystemConfig


class FakeWarp:
    def __init__(self, warp_id):
        self.ctx = type("Ctx", (), {"warp_id": warp_id})()

    def __repr__(self):
        return "W%d" % self.ctx.warp_id


def ids(warps):
    return [w.ctx.warp_id for w in warps]


class TestLrr:
    def test_rotates_after_issue(self):
        sched = LooseRoundRobin()
        warps = [FakeWarp(i) for i in range(4)]
        assert ids(sched.order(warps, 0)) == [0, 1, 2, 3]
        sched.note_issue(warps[0], 0, 0)
        assert ids(sched.order(warps, 1)) == [1, 2, 3, 0]
        sched.note_issue(warps[1], 0, 1)
        assert ids(sched.order(warps, 2)) == [2, 3, 0, 1]

    def test_empty_list(self):
        assert LooseRoundRobin().order([], 0) == []

    def test_rotation_wraps(self):
        sched = LooseRoundRobin()
        warps = [FakeWarp(i) for i in range(2)]
        for _ in range(5):
            sched.note_issue(warps[0], 0, 0)
        assert ids(sched.order(warps, 0)) == [1, 0]


class TestGto:
    def test_greedy_warp_stays_first(self):
        sched = GreedyThenOldest()
        warps = [FakeWarp(i) for i in range(3)]
        sched.note_issue(warps[2], 0, 0)
        assert ids(sched.order(warps, 1)) == [2, 0, 1]

    def test_falls_back_to_oldest_without_greedy(self):
        sched = GreedyThenOldest()
        warps = [FakeWarp(3), FakeWarp(1), FakeWarp(2)]
        assert ids(sched.order(warps, 0)) == [1, 2, 3]

    def test_departed_greedy_is_ignored(self):
        sched = GreedyThenOldest()
        gone = FakeWarp(9)
        sched.note_issue(gone, 0, 0)
        warps = [FakeWarp(1), FakeWarp(2)]
        assert ids(sched.order(warps, 0)) == [1, 2]


class TestFactory:
    def test_make(self):
        assert isinstance(make_scheduler("lrr"), LooseRoundRobin)
        assert isinstance(make_scheduler("gto"), GreedyThenOldest)
        with pytest.raises(ValueError):
            make_scheduler("bogus")


class TestComputeUnits:
    def test_alu_fully_pipelined(self):
        cu = ComputeUnits(SystemConfig())
        r1 = cu.issue_alu(now=0)
        r2 = cu.issue_alu(now=0)
        assert r1 == r2 == SystemConfig().alu_latency
        assert cu.alu_issued == 2

    def test_alu_latency_override(self):
        cu = ComputeUnits(SystemConfig())
        assert cu.issue_alu(now=10, latency=1) == 11

    def test_sfu_initiation_interval(self):
        cfg = SystemConfig()
        cu = ComputeUnits(cfg)
        assert cu.sfu_ready(0)
        cu.issue_sfu(now=0)
        assert not cu.sfu_ready(1)
        assert cu.sfu_ready(cfg.sfu_initiation_interval)
        with pytest.raises(RuntimeError):
            cu.issue_sfu(now=1)

    def test_sfu_latency(self):
        cfg = SystemConfig()
        cu = ComputeUnits(cfg)
        assert cu.issue_sfu(now=5) == 5 + cfg.sfu_latency
