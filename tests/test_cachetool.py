"""Tests for `repro cache info|verify|prune` (experiments/cachetool.py)."""

import json
import os
import time

import pytest

from repro import cli
from repro.experiments.cachetool import (
    cache_info,
    cache_prune,
    cache_verify,
    format_info,
)
from repro.experiments.executor import CACHE_VERSION


def entry_name(n: int) -> str:
    return "%016x.json" % n


def write_entry(cache, name, payload):
    with open(os.path.join(cache, name), "w", encoding="utf-8") as fh:
        if isinstance(payload, str):
            fh.write(payload)
        else:
            json.dump(payload, fh)


@pytest.fixture
def cache(tmp_path):
    """A cache with two valid entries, one stale-version entry, one
    key-mismatched entry, one corrupt entry, one quarantined file, and
    one ancient orphan tmp file."""
    cache = str(tmp_path / "cache")
    os.makedirs(cache)
    for n in (1, 2):
        write_entry(cache, entry_name(n),
                    {"version": CACHE_VERSION, "key": "%016x" % n, "ok": True})
    write_entry(cache, entry_name(3),
                {"version": CACHE_VERSION - 1, "key": "%016x" % 3})
    write_entry(cache, entry_name(4),
                {"version": CACHE_VERSION, "key": "%016x" % 99})
    write_entry(cache, entry_name(5), "{not json")
    write_entry(cache, entry_name(6) + ".bad", "{older casualty")
    tmp = os.path.join(cache, entry_name(7) + ".tmp.1234")
    write_entry(cache, os.path.basename(tmp), "{half-written")
    old = time.time() - 7200
    os.utime(tmp, (old, old))
    return cache


class TestInfo:
    def test_counts_and_versions(self, cache):
        info = cache_info(cache)
        assert info["entries"] == 5
        assert info["orphan_tmp"] == 1
        assert info["quarantined"] == 1
        assert info["versions"][str(CACHE_VERSION)] == 3  # incl. key mismatch
        assert info["versions"][str(CACHE_VERSION - 1)] == 1
        assert info["versions"]["corrupt"] == 1
        assert info["entry_bytes"] > 0

    def test_missing_dir_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="not found"):
            cache_info(str(tmp_path / "nope"))

    def test_format_info_mentions_the_lot(self, cache):
        text = format_info(cache_info(cache))
        assert "entries:     5" in text
        assert "orphan tmp:  1" in text
        assert "quarantined: 1" in text


class TestVerify:
    def test_classifies_and_quarantines(self, cache):
        verdict = cache_verify(cache)
        assert verdict["checked"] == 5
        assert verdict["ok"] == 2
        assert verdict["quarantined"] == [entry_name(5)]
        assert verdict["stale_version"] == [entry_name(3)]
        assert verdict["key_mismatch"] == [entry_name(4)]
        # the corrupt entry was moved aside exactly as the loader would
        assert os.path.exists(os.path.join(cache, entry_name(5) + ".bad"))
        assert not os.path.exists(os.path.join(cache, entry_name(5)))

    def test_verify_is_idempotent(self, cache):
        cache_verify(cache)
        verdict = cache_verify(cache)
        assert verdict["quarantined"] == []
        assert verdict["ok"] == 2
        assert verdict["previously_quarantined"] == 2


class TestPrune:
    def test_removes_only_unservable_files(self, cache):
        report = cache_prune(cache, tmp_age_s=3600.0)
        assert report["kept_entries"] == 2
        removed = set(report["removed"])
        assert removed == {
            entry_name(3),                 # stale version
            entry_name(4),                 # key mismatch
            entry_name(5) + ".bad",        # quarantined by the verify pass
            entry_name(6) + ".bad",        # previously quarantined
            entry_name(7) + ".tmp.1234",   # ancient orphan tmp
        }
        assert report["freed_bytes"] > 0
        survivors = sorted(os.listdir(cache))
        assert survivors == [entry_name(1), entry_name(2)]

    def test_young_tmp_files_survive(self, tmp_path):
        cache = str(tmp_path / "cache")
        os.makedirs(cache)
        write_entry(cache, entry_name(7) + ".tmp.1234", "{half-written")
        report = cache_prune(cache, tmp_age_s=3600.0)
        assert report["removed"] == []
        assert os.path.exists(os.path.join(cache, entry_name(7) + ".tmp.1234"))


class TestCli:
    def test_info(self, cache, capsys):
        assert cli.main(["cache", "info", cache]) == 0
        assert "entries:     5" in capsys.readouterr().out

    def test_info_json(self, cache, capsys):
        assert cli.main(["cache", "info", cache, "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["entries"] == 5

    def test_verify_exit_code_flags_problems(self, cache, capsys):
        assert cli.main(["cache", "verify", cache]) == 1
        out = capsys.readouterr().out
        assert "2 ok" in out
        assert "quarantined %s" % entry_name(5) in out

    def test_verify_clean_cache_exits_zero(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        os.makedirs(cache)
        write_entry(cache, entry_name(1),
                    {"version": CACHE_VERSION, "key": "%016x" % 1})
        assert cli.main(["cache", "verify", cache]) == 0

    def test_prune(self, cache, capsys):
        assert cli.main(["cache", "prune", cache]) == 0
        out = capsys.readouterr().out
        assert "pruned 5 file(s)" in out

    def test_missing_dir_exits_two(self, tmp_path, capsys):
        assert cli.main(["cache", "info", str(tmp_path / "nope")]) == 2
        assert "error:" in capsys.readouterr().err
