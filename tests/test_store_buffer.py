"""Unit tests for the write-combining store buffer."""

import pytest

from repro.mem.store_buffer import SbEntryState, StoreBuffer


def make_sb(capacity=4, write_combining=True, issued=None):
    issued = issued if issued is not None else []
    return StoreBuffer(
        capacity, issue_fn=issued.append, write_combining=write_combining
    ), issued


class TestWriteCombining:
    def test_stores_to_same_line_combine(self):
        sb, _ = make_sb()
        e1 = sb.write(0x10, {0, 4})
        e2 = sb.write(0x10, {8})
        assert e1 is e2
        assert e1.words == {0, 4, 8}
        assert sb.occupancy == 1
        assert sb.combines == 1

    def test_no_combining_when_disabled(self):
        sb, _ = make_sb(write_combining=False)
        sb.write(0x10)
        sb.write(0x10)
        assert sb.occupancy == 2
        assert sb.combines == 0

    def test_issued_entry_does_not_combine(self):
        """A store to a line whose entry is in flight allocates fresh."""
        sb, issued = make_sb()
        sb.write(0x10)
        sb.drain_one()
        assert issued[0].state is SbEntryState.ISSUED
        e2 = sb.write(0x10)
        assert e2.state is SbEntryState.PENDING
        assert sb.occupancy == 2

    def test_ack_targets_the_issued_entry(self):
        sb, _ = make_sb()
        sb.write(0x10)
        first = sb.drain_one()
        sb.write(0x10)
        sb.ack(0x10, seq=first.seq)
        assert sb.occupancy == 1
        assert sb.has_pending()


class TestCapacity:
    def test_full_rejects_new_lines_but_accepts_combines(self):
        sb, _ = make_sb(capacity=2)
        sb.write(0x10)
        sb.write(0x20)
        assert sb.is_full()
        assert not sb.can_accept(0x30)
        assert sb.can_accept(0x10)  # combinable
        with pytest.raises(RuntimeError):
            sb.write(0x30)

    def test_peak_occupancy(self):
        sb, _ = make_sb(capacity=3)
        for line in (1, 2, 3):
            sb.write(line)
        assert sb.peak_occupancy == 3

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            StoreBuffer(0, issue_fn=lambda e: None)


class TestDrain:
    def test_drain_is_fifo(self):
        sb, issued = make_sb()
        sb.write(0x10)
        sb.write(0x20)
        sb.drain_one()
        sb.drain_one()
        assert [e.line for e in issued] == [0x10, 0x20]

    def test_drain_empty_returns_none(self):
        sb, _ = make_sb()
        assert sb.drain_one() is None

    def test_ack_unknown_raises(self):
        sb, _ = make_sb()
        with pytest.raises(KeyError):
            sb.ack(0x10)
        sb.write(0x10)
        with pytest.raises(KeyError):
            sb.ack(0x10)  # pending, not issued


class TestFlushBarriers:
    def test_flush_on_empty_fires_immediately(self):
        sb, _ = make_sb()
        fired = []
        sb.flush(lambda: fired.append(True))
        assert fired == [True]
        assert not sb.flush_in_progress()

    def test_flush_waits_for_all_prior_entries(self):
        sb, _ = make_sb()
        sb.write(0x10)
        sb.write(0x20)
        fired = []
        sb.flush(lambda: fired.append(True))
        assert sb.flush_in_progress()
        e1 = sb.drain_one()
        e2 = sb.drain_one()
        sb.ack(0x10, seq=e1.seq)
        assert not fired
        sb.ack(0x20, seq=e2.seq)
        assert fired == [True]

    def test_flush_ignores_entries_allocated_after_barrier(self):
        """A release only orders *prior* stores (flush barrier semantics)."""
        sb, _ = make_sb()
        sb.write(0x10)
        fired = []
        sb.flush(lambda: fired.append(True))
        sb.write(0x20)  # younger than the barrier
        e1 = sb.drain_one()
        sb.ack(0x10, seq=e1.seq)
        assert fired == [True]
        assert sb.occupancy == 1  # the younger entry is still there

    def test_multiple_flush_barriers(self):
        sb, _ = make_sb()
        sb.write(0x10)
        order = []
        sb.flush(lambda: order.append("first"))
        sb.write(0x20)
        sb.flush(lambda: order.append("second"))
        e1 = sb.drain_one()
        e2 = sb.drain_one()
        sb.ack(0x10, seq=e1.seq)
        assert order == ["first"]
        sb.ack(0x20, seq=e2.seq)
        assert order == ["first", "second"]
