"""Tests for breakdown rendering and export."""

from repro.core.breakdown import StallBreakdown
from repro.core.report import (
    format_mem_data_table,
    format_mem_struct_table,
    format_stacked_bars,
    format_table,
    summarize,
    to_csv,
    to_json,
)
from repro.core.stall_types import MemStructCause, ServiceLocation, StallType


def sample(no_stall=50, sync=30, mem_data=15, mem_struct=5):
    bd = StallBreakdown()
    bd.add(StallType.NO_STALL, no_stall)
    bd.add(StallType.SYNC, sync)
    bd.add(StallType.MEM_DATA, mem_data)
    bd.add(StallType.MEM_STRUCT, mem_struct)
    bd.add_mem_data(ServiceLocation.L2, mem_data - 5)
    bd.add_mem_data(ServiceLocation.REMOTE_L1, 5)
    bd.add_mem_struct(MemStructCause.PENDING_RELEASE, mem_struct)
    return bd


def pair():
    return {"baseline": sample(), "improved": sample(no_stall=40, sync=10)}


class TestTables:
    def test_table_contains_all_types_and_configs(self):
        text = format_table(pair(), baseline="baseline")
        for stall in StallType:
            assert stall.value in text
        assert "baseline" in text and "improved" in text

    def test_baseline_total_is_one(self):
        text = format_table(pair(), baseline="baseline")
        total_line = [l for l in text.splitlines() if l.startswith("total")][0]
        assert "1.0000" in total_line

    def test_default_baseline_is_first(self):
        a = format_table(pair())
        b = format_table(pair(), baseline="baseline")
        assert a == b

    def test_mem_data_table(self):
        text = format_mem_data_table(pair(), baseline="baseline")
        assert "remote_l1" in text
        assert "l1_coalescing" in text

    def test_mem_struct_table(self):
        text = format_mem_struct_table(pair(), baseline="baseline")
        assert "pending_release" in text
        assert "1.0000" in text

    def test_mem_tables_handle_zero_baseline(self):
        empty = {"a": StallBreakdown(), "b": StallBreakdown()}
        assert "0.0000" in format_mem_data_table(empty)
        assert "0.0000" in format_mem_struct_table(empty)


class TestBarsAndCsv:
    def test_stacked_bars_have_legend_and_rows(self):
        text = format_stacked_bars(pair(), baseline="baseline", width=40)
        assert "legend:" in text
        assert text.count("|") >= 2

    def test_bar_length_tracks_total(self):
        bars = format_stacked_bars(
            {"short": sample(no_stall=10, sync=0, mem_data=0, mem_struct=0),
             "long": sample(no_stall=100, sync=0, mem_data=0, mem_struct=0)},
            baseline="long",
            width=50,
        ).splitlines()
        short_row = next(l for l in bars if l.startswith("short"))
        long_row = next(l for l in bars if l.startswith("long"))
        assert len(long_row) > len(short_row)

    def test_csv_roundtrip_counts(self):
        text = to_csv({"cfg": sample()})
        lines = text.strip().splitlines()
        assert lines[0] == "config,category,cycles"
        data = {row.split(",")[1]: int(row.split(",")[2]) for row in lines[1:]}
        assert data["no_stall"] == 50
        assert data["mem_data:remote_l1"] == 5

    def test_json_round_trips_breakdowns(self):
        import json

        data = json.loads(to_json({"cfg": sample()}))
        restored = StallBreakdown.from_dict(data["cfg"])
        assert restored.counts == sample().counts
        assert restored.mem_data == sample().mem_data

    def test_summarize_names_dominant(self):
        assert "no_stall" in summarize("x", sample())
        assert "x:" in summarize("x", sample())
