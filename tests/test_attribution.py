"""Unit tests for the attribution engine and breakdown containers."""

import pytest

from repro.core.attribution import Inspector, SmAttribution
from repro.core.breakdown import StallBreakdown
from repro.core.stall_types import MemStructCause, ServiceLocation, StallType


class TestRetroactiveResolution:
    def test_pending_then_resolved(self):
        attr = SmAttribution(0)
        attr.record(StallType.MEM_DATA, detail=7, n=40)
        assert attr.breakdown.mem_data[ServiceLocation.L2] == 0
        attr.resolve_mem(7, ServiceLocation.L2)
        assert attr.breakdown.mem_data[ServiceLocation.L2] == 40
        assert attr.pending_tags == 0

    def test_record_after_resolution_goes_direct(self):
        attr = SmAttribution(0)
        attr.resolve_mem(7, ServiceLocation.REMOTE_L1)
        attr.record(StallType.MEM_DATA, detail=7, n=5)
        assert attr.breakdown.mem_data[ServiceLocation.REMOTE_L1] == 5
        assert attr.pending_tags == 0

    def test_finalize_drains_unresolved_to_memory(self):
        attr = SmAttribution(0)
        attr.record(StallType.MEM_DATA, detail=9, n=12)
        attr.finalize()
        assert attr.breakdown.mem_data[ServiceLocation.MEMORY] == 12
        assert attr.unresolved_drained == 12

    def test_mem_struct_detail_recorded(self):
        attr = SmAttribution(0)
        attr.record(StallType.MEM_STRUCT, detail=MemStructCause.MSHR_FULL, n=3)
        attr.record(StallType.MEM_STRUCT, detail=MemStructCause.PENDING_DMA, n=2)
        assert attr.breakdown.mem_struct[MemStructCause.MSHR_FULL] == 3
        assert attr.breakdown.mem_struct[MemStructCause.PENDING_DMA] == 2

    def test_sub_counts_never_exceed_parent(self):
        attr = SmAttribution(0)
        attr.record(StallType.MEM_DATA, detail=1, n=10)
        attr.resolve_mem(1, ServiceLocation.L1)
        attr.record(StallType.MEM_STRUCT, detail=MemStructCause.BANK_CONFLICT, n=4)
        attr.finalize()
        attr.breakdown.validate()  # raises on inconsistency

    def test_non_memory_stalls_ignore_detail(self):
        attr = SmAttribution(0)
        attr.record(StallType.SYNC, detail=123, n=6)
        assert attr.breakdown.counts[StallType.SYNC] == 6
        assert sum(attr.breakdown.mem_data.values()) == 0


class TestInspector:
    def test_aggregate_merges_all_sms(self):
        insp = Inspector(num_sms=3)
        insp.sm(0).record(StallType.NO_STALL, n=10)
        insp.sm(1).record(StallType.SYNC, n=5)
        insp.sm(2).record(StallType.IDLE, n=2)
        agg = insp.aggregate()
        assert agg.total_cycles == 17
        assert agg.counts[StallType.SYNC] == 5

    def test_finalize_is_per_sm(self):
        insp = Inspector(num_sms=2)
        insp.sm(0).record(StallType.MEM_DATA, detail=1, n=4)
        insp.finalize()
        assert insp.sm(0).breakdown.mem_data[ServiceLocation.MEMORY] == 4


class TestBreakdownMath:
    def make(self, no_stall=10, sync=5, mem_data=3):
        bd = StallBreakdown()
        bd.add(StallType.NO_STALL, no_stall)
        bd.add(StallType.SYNC, sync)
        bd.add(StallType.MEM_DATA, mem_data)
        bd.add_mem_data(ServiceLocation.L2, mem_data)
        return bd

    def test_totals(self):
        bd = self.make()
        assert bd.total_cycles == 18
        assert bd.stall_cycles == 8
        assert bd.fraction(StallType.SYNC) == pytest.approx(5 / 18)

    def test_merge_is_elementwise(self):
        merged = self.make().merge(self.make())
        assert merged.total_cycles == 36
        assert merged.mem_data[ServiceLocation.L2] == 6

    def test_merged_list(self):
        parts = [self.make(), self.make(), self.make()]
        assert StallBreakdown.merged(parts).total_cycles == 54

    def test_normalization_uses_baseline_total(self):
        base = self.make(no_stall=20)
        other = self.make()
        norm = other.normalized_to(base)
        assert norm[StallType.NO_STALL] == pytest.approx(10 / 28)
        assert sum(norm.values()) == pytest.approx(18 / 28)

    def test_normalize_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            self.make().normalized_to(StallBreakdown())

    def test_roundtrip_dict(self):
        bd = self.make()
        bd.add_mem_struct(MemStructCause.MSHR_FULL, 2)
        bd.add(StallType.MEM_STRUCT, 2)
        back = StallBreakdown.from_dict(bd.to_dict())
        assert back.counts == bd.counts
        assert back.mem_data == bd.mem_data
        assert back.mem_struct == bd.mem_struct

    def test_copy_is_independent(self):
        bd = self.make()
        cp = bd.copy()
        cp.add(StallType.SYNC, 100)
        assert bd.counts[StallType.SYNC] == 5

    def test_validate_rejects_inconsistent_subtaxonomy(self):
        bd = StallBreakdown()
        bd.add_mem_data(ServiceLocation.L2, 5)  # no parent MEM_DATA cycles
        with pytest.raises(ValueError):
            bd.validate()

    def test_rows_are_stable_and_complete(self):
        rows = dict(self.make().rows())
        assert rows["no_stall"] == 10
        assert rows["mem_data:l2"] == 3
        assert "mem_struct:mshr_full" in rows
