"""Rendering edge cases for :mod:`repro.core.report`.

The report helpers are exercised end-to-end by the figure tests on real
breakdowns; these tests pin the degenerate inputs a user can still reach
-- an empty stats tree, a zero-cycle run, a one-cell campaign -- so the
renderers degrade to readable output instead of raising.
"""

from repro.core.breakdown import StallBreakdown
from repro.core.component import Component, StatsSnapshot
from repro.core.report import (
    format_campaign_matrix,
    format_stacked_bars,
    format_stats_tree,
    format_table,
    matrix_attribution,
    summarize,
)
from repro.core.stall_types import StallType


class TestZeroCycleBreakdown:
    def test_format_table_all_zero_baseline(self):
        text = format_table({"empty": StallBreakdown()})
        assert "normalized to empty" in text
        # every stall row and the total row render 0.0000, no exception
        assert text.count("0.0000") == len(StallType) + 1

    def test_format_table_zero_baseline_nonzero_other(self):
        busy = StallBreakdown()
        busy.add(StallType.NO_STALL, 10)
        text = format_table({"empty": StallBreakdown(), "busy": busy})
        # a zero baseline zeroes the whole table rather than raising
        assert "busy" in text
        assert "inf" not in text and "nan" not in text

    def test_format_table_nonzero_unchanged(self):
        # the zero-guard must not perturb the normal path (golden artifacts
        # depend on the exact rendering)
        bd = StallBreakdown()
        bd.add(StallType.NO_STALL, 3)
        bd.add(StallType.MEM_DATA, 1)
        text = format_table({"a": bd})
        assert "%14.4f" % 0.75 in text
        assert "%14.4f" % 0.25 in text

    def test_stacked_bars_and_summarize_zero(self):
        bars = format_stacked_bars({"empty": StallBreakdown()})
        assert "legend:" in bars
        line = summarize("empty", StallBreakdown())
        assert "0 cycles" in line

    def test_matrix_attribution_zero(self):
        frac = matrix_attribution(StallBreakdown())
        assert set(frac.values()) == {0.0}


class TestCampaignMatrix:
    def test_single_cell_matrix(self):
        bd = StallBreakdown()
        bd.add(StallType.MEM_DATA, 8)
        bd.add(StallType.NO_STALL, 2)
        text = format_campaign_matrix(
            [{"workload": "w", "hierarchy": "default", "protocol": "gpu",
              "cycles": 10, "breakdown": bd}]
        )
        assert "w" in text and "default" in text and "gpu" in text
        assert "memory_data" in text  # dominant column
        assert "80.0%" in text

    def test_zero_cycle_cell(self):
        text = format_campaign_matrix(
            [{"workload": "w", "hierarchy": "h", "protocol": "denovo",
              "cycles": 0, "breakdown": StallBreakdown()}]
        )
        assert "denovo" in text


class TestStatsTree:
    def test_empty_snapshot(self):
        text = format_stats_tree(StatsSnapshot("empty"))
        assert text == "empty:"

    def test_derived_only_node(self):
        node = Component("calc")
        node.stat_derived("ratio", lambda: 0.5)
        node.stat_derived("count", lambda: 7)
        text = format_stats_tree(node.stats())
        assert "calc:" in text
        assert "ratio" in text and "0.500" in text
        assert "count" in text and "7" in text

    def test_histogram_rendering(self):
        node = Component("h")
        node.stat_histogram("lat").observe(4, 2)
        text = format_stats_tree(node.stats())
        assert "{4: 2}" in text
