"""Unit tests for the load/store unit's structural-hazard checks.

Every rejection reason maps to one of Section 4.4's memory structural
stall sub-classes; these tests pin the mapping and the check order.
"""

from repro.core.stall_types import MemStructCause
from repro.gpu.instruction import Instruction, Space
from repro.gpu.lsu import AccessGroup, Lsu
from repro.mem.coherence.gpu_coherence import GpuCoherence
from repro.mem.dma import DmaEngine, DmaTransfer
from repro.mem.scratchpad import Scratchpad
from repro.sim.config import SystemConfig

from tests.test_memory_system import MiniSystem


def make_lsu(config=None, with_dma=False):
    sys = MiniSystem(GpuCoherence, config)
    cfg = sys.config
    pad = Scratchpad(cfg.scratchpad_size, cfg.scratchpad_banks)
    dma = DmaEngine(cfg, sys.engine, sys.l1s[0], pad) if with_dma else None
    lsu = Lsu(cfg, sys.l1s[0], scratchpad=pad, dma=dma)
    return sys, lsu


def warp_load(base, lanes=32, stride=4, **kw):
    return Instruction.load([base + i * stride for i in range(lanes)], dst=1, **kw)


class TestAddressHelpers:
    def test_lines_are_deduplicated_in_order(self):
        _, lsu = make_lsu()
        instr = Instruction.load([0x100, 0x104, 0x140, 0x108])
        assert lsu.lines_of(instr) == [0x100 >> 6, 0x140 >> 6]

    def test_bank_conflict_degree(self):
        _, lsu = make_lsu()
        # 8 L1 banks: lines 0 and 8 collide.
        assert lsu.l1_bank_conflict_degree([0, 8]) == 2
        assert lsu.l1_bank_conflict_degree([0, 1, 2, 3]) == 1
        assert lsu.l1_bank_conflict_degree([]) == 1


class TestOccupancy:
    def test_occupy_blocks_following_cycles(self):
        _, lsu = make_lsu()
        lsu.occupy(now=10, cycles=2)
        instr = warp_load(0x1000)
        assert lsu.check(instr, now=11) is MemStructCause.BANK_CONFLICT
        assert lsu.check(instr, now=12) is MemStructCause.BANK_CONFLICT
        assert lsu.check(instr, now=13) is None

    def test_zero_occupancy_does_not_block(self):
        _, lsu = make_lsu()
        lsu.occupy(now=10, cycles=0)
        assert lsu.check(warp_load(0x1000), now=11) is None


class TestMshrAdmission:
    def test_load_rejected_when_mshr_lacks_room(self):
        cfg = SystemConfig(mshr_entries=2)
        sys, lsu = make_lsu(cfg)
        # a 32-lane, 4B-stride load covers 2 lines: fits exactly
        assert lsu.check(warp_load(0x1000), now=0) is None
        # 8B stride covers 4 lines: more than the whole MSHR -- admitted
        # only against an *idle* MSHR (issued in waves), rejected while
        # anything is in flight.
        wide = warp_load(0x2000, stride=8)
        assert lsu.check(wide, now=0) is None
        sys.l1s[0].load_line(0x999, lambda loc, rid: None)
        assert lsu.check(wide, now=0) is MemStructCause.MSHR_FULL

    def test_full_mshr_blocks_head_of_line(self):
        cfg = SystemConfig(mshr_entries=1)
        sys, lsu = make_lsu(cfg)
        sys.l1s[0].load_line(0x999, lambda loc, rid: None)
        assert sys.l1s[0].mshr.is_full()
        # even a would-be L1 hit load is blocked while the MSHR is full
        assert lsu.check(warp_load(0x1000, lanes=1), now=0) is MemStructCause.MSHR_FULL

    def test_merging_load_passes_despite_full_mshr(self):
        cfg = SystemConfig(mshr_entries=1)
        sys, lsu = make_lsu(cfg)
        sys.l1s[0].load_line(0x40, lambda loc, rid: None)  # line 0x40 in flight
        merging = warp_load(0x40 << 6, lanes=1)             # same line by address
        assert lsu.check(merging, now=0) is None

    def test_atomics_bypass_mshr_check(self):
        cfg = SystemConfig(mshr_entries=1)
        sys, lsu = make_lsu(cfg)
        sys.l1s[0].load_line(0x999, lambda loc, rid: None)
        atomic = Instruction.atomic_add(0x4000, 1)
        assert lsu.check(atomic, now=0) is None


class TestStoreAdmission:
    def test_store_rejected_when_sb_lacks_room(self):
        cfg = SystemConfig(store_buffer_entries=2)
        sys, lsu = make_lsu(cfg)
        # 4 lines > the whole buffer: admitted only against an *idle*
        # store path (overflow drip-fed), rejected once anything occupies
        # the buffer.
        store = Instruction.store([0x1000 + i * 64 for i in range(4)])
        assert lsu.check(store, now=0) is None
        sys.l1s[0].store_line(0x40)
        assert lsu.check(store, now=0) is MemStructCause.STORE_BUFFER_FULL
        narrow = Instruction.store([0x2000, 0x2040])
        assert lsu.check(narrow, now=0) is MemStructCause.STORE_BUFFER_FULL

    def test_store_accepted_when_room_exists(self):
        cfg = SystemConfig(store_buffer_entries=2)
        sys, lsu = make_lsu(cfg)
        narrow = Instruction.store([0x1000, 0x1040])
        assert lsu.check(narrow, now=0) is None

    def test_combinable_store_accepted_when_full(self):
        cfg = SystemConfig(store_buffer_entries=1)
        sys, lsu = make_lsu(cfg)
        sys.l1s[0].store_line(0x40)
        same_line = Instruction.store([0x40 << 6])
        assert lsu.check(same_line, now=0) is None


class TestReleaseWindow:
    def test_release_blocks_memory_instructions(self):
        _, lsu = make_lsu()
        lsu.begin_release()
        assert lsu.check(warp_load(0x1000), now=0) is MemStructCause.PENDING_RELEASE
        store = Instruction.store([0x2000])
        assert lsu.check(store, now=0) is MemStructCause.PENDING_RELEASE
        lsu.end_release()
        assert lsu.check(warp_load(0x1000), now=0) is None

    def test_atomics_pass_during_release(self):
        _, lsu = make_lsu()
        lsu.begin_release()
        assert lsu.check(Instruction.atomic_add(0x40, 1), now=0) is None

    def test_sfifo_disables_release_blocking(self):
        cfg = SystemConfig(sfifo_release=True)
        _, lsu = make_lsu(cfg)
        lsu.begin_release()
        assert lsu.check(warp_load(0x1000), now=0) is None


class TestPendingDma:
    def test_scratch_access_blocked_during_inbound_dma(self):
        sys, lsu = make_lsu(with_dma=True)
        lsu.dma.start(
            DmaTransfer(global_base=0x1000, scratch_base=0, size=512, to_scratch=True)
        )
        scratch = Instruction.load([0], space=Space.SCRATCH)
        assert lsu.check(scratch, now=0) is MemStructCause.PENDING_DMA
        sys.engine.run()
        assert lsu.check(scratch, now=sys.engine.now) is None

    def test_global_access_not_blocked_by_dma(self):
        sys, lsu = make_lsu(with_dma=True)
        lsu.dma.start(
            DmaTransfer(global_base=0x1000, scratch_base=0, size=128, to_scratch=True)
        )
        # global loads are throttled only by the MSHR, not by pending DMA
        cause = lsu.check(warp_load(0x8000), now=0)
        assert cause in (None, MemStructCause.MSHR_FULL)


class TestAccessGroup:
    def test_final_location_is_last_completion(self):
        from repro.core.stall_types import ServiceLocation

        group = AccessGroup(tag=1, remaining=3)
        assert not group.line_done(ServiceLocation.L1)
        assert not group.line_done(ServiceLocation.L2)
        assert group.line_done(ServiceLocation.MEMORY)
        assert group.final_loc is ServiceLocation.MEMORY

    def test_rejection_statistics(self):
        _, lsu = make_lsu()
        lsu.begin_release()
        lsu.check(warp_load(0x1000), now=0)
        assert lsu.rejections[MemStructCause.PENDING_RELEASE] == 1
