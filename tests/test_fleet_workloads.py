"""Tests for the campaign fleet workloads (spmv, histogram, matmul_tiled,
transpose, gups): functional correctness under both protocols, byte-stable
determinism, record->replay exactness, characteristic stall behavior, and
the oversized-fan-out serialization that transpose-style scatters rely on.
"""

import json

import pytest

from repro.core.stall_types import MemStructCause, StallType
from repro.sim.config import Protocol, SystemConfig
from repro.system import System, run_workload
from repro.workloads import available_workloads, make_workload
from repro.workloads.fleet import (
    GupsWorkload,
    HistogramWorkload,
    MatmulTiledWorkload,
    SpmvWorkload,
    TransposeWorkload,
)

FLEET = ("spmv", "histogram", "matmul_tiled", "transpose", "gups")

#: registry name -> small kwargs used across the generic tests
SMALL = {
    "spmv": {"num_rows": 32},
    "histogram": {"elements_per_warp": 8},
    "matmul_tiled": {"n": 16, "tile": 8},
    "transpose": {"n": 32},
    "gups": {"updates_per_warp": 16},
}


def _run(name, proto=Protocol.GPU_COHERENCE, extra_cfg=None, **kwargs):
    wl = make_workload(name, **{**SMALL[name], **kwargs})
    cfg = SystemConfig(num_sms=2, protocol=proto)
    if extra_cfg:
        cfg = cfg.scaled(**extra_cfg)
    system = System(wl.configure(cfg))
    result = system.run(wl)
    return wl, system, result


class TestRegistry:
    def test_fleet_is_registered(self):
        names = available_workloads()
        for name in FLEET:
            assert name in names

    def test_bad_kwargs_rejected(self):
        with pytest.raises(ValueError):
            SpmvWorkload(num_rows=0)
        with pytest.raises(ValueError):
            HistogramWorkload(num_bins=0)
        with pytest.raises(ValueError):
            MatmulTiledWorkload(n=10, tile=8)
        with pytest.raises(ValueError):
            MatmulTiledWorkload(n=16, tile=8, warps_per_tb=3)
        with pytest.raises(ValueError):
            TransposeWorkload(n=0)
        with pytest.raises(ValueError):
            GupsWorkload(table_words=0)


class TestCorrectness:
    @pytest.mark.parametrize("name", FLEET)
    @pytest.mark.parametrize("proto", [Protocol.GPU_COHERENCE, Protocol.DENOVO])
    def test_verify_under_both_protocols(self, name, proto):
        wl, system, result = _run(name, proto)
        assert result.cycles > 0
        assert wl.verify(system)

    def test_matmul_global_variant_correct(self):
        wl, system, _ = _run("matmul_tiled", use_scratchpad=False)
        assert wl.verify(system)


class TestDeterminism:
    @pytest.mark.parametrize("name", FLEET)
    def test_byte_identical_rerun(self, name):
        dumps = []
        for _ in range(2):
            wl = make_workload(name, **SMALL[name])
            result = run_workload(SystemConfig(num_sms=2), wl)
            dumps.append(json.dumps(result.to_dict(), sort_keys=True))
        assert dumps[0] == dumps[1]


class TestCharacteristicBehavior:
    def test_spmv_is_memory_data_bound(self):
        _, _, result = _run("spmv")
        bd = result.breakdown
        assert bd.counts[StallType.MEM_DATA] > bd.counts[StallType.NO_STALL]

    def test_histogram_atomics_hit_every_bin(self):
        wl, system, result = _run("histogram")
        total = sum(
            system.memory.load_word(wl.bin_addr(b)) for b in range(wl.num_bins)
        )
        cfg = system.config
        assert total == wl.num_tbs * wl.warps_per_tb * wl.elements_per_warp * cfg.warp_size

    def test_matmul_scratchpad_has_bank_conflicts(self):
        _, _, result = _run("matmul_tiled", extra_cfg={"num_sms": 4})
        assert result.breakdown.mem_struct[MemStructCause.BANK_CONFLICT] > 0

    def test_matmul_scratchpad_cuts_global_traffic(self):
        def l1_load_misses(use_scratchpad):
            _, system, _ = _run(
                "matmul_tiled", extra_cfg={"num_sms": 4},
                use_scratchpad=use_scratchpad,
            )
            return sum(
                sm.l1.stats()["load_misses"] for sm in system.sms
            )

        assert l1_load_misses(True) < l1_load_misses(False)

    def test_transpose_scatter_is_store_pressure_bound(self):
        _, _, result = _run("transpose")
        bd = result.breakdown
        assert (
            bd.mem_struct[MemStructCause.STORE_BUFFER_FULL]
            > bd.mem_struct[MemStructCause.MSHR_FULL]
        )
        assert bd.counts[StallType.MEM_STRUCT] > 0

    def test_gups_misses_to_dram(self):
        _, _, result = _run("gups")
        assert result.stats["dram"]["accesses"] > 0


class TestRecordReplay:
    """Every fleet workload records at the LSU->L1 boundary and replays to
    the exact memory-side stats, attribution and cycle count (matmul_tiled
    through its global-memory variant: local-memory configs are not
    recordable by design)."""

    RECORDABLE = [
        ("spmv", {"num_rows": 32}),
        ("histogram", {"elements_per_warp": 8}),
        ("matmul_tiled", {"n": 16, "tile": 8, "use_scratchpad": False}),
        ("transpose", {"n": 32}),
        ("gups", {"updates_per_warp": 16}),
    ]

    @pytest.mark.parametrize("name,wargs", RECORDABLE)
    def test_replay_verifies_exactly(self, name, wargs):
        from repro.trace import (
            compare_memory_stats,
            compare_recorded_breakdown,
            memory_side_stats,
            record_workload,
            replay_trace,
        )

        config = SystemConfig(num_sms=2)
        result, trace = record_workload(
            config, make_workload(name, **wargs), name=name, workload_args=wargs
        )
        replayed = replay_trace(trace)
        mismatches = compare_memory_stats(
            trace.recorded_stats, memory_side_stats(replayed.stats)
        )
        mismatches += compare_recorded_breakdown(trace, replayed)
        assert not mismatches, mismatches
        assert replayed.cycles == result.cycles

    @pytest.mark.parametrize("name,wargs", RECORDABLE[:2])
    def test_recording_twice_is_byte_identical(self, name, wargs, tmp_path):
        from repro.trace import record_workload, save_trace

        shas = []
        for i in range(2):
            _, trace = record_workload(
                SystemConfig(num_sms=2),
                make_workload(name, **wargs),
                name=name,
                workload_args=wargs,
            )
            shas.append(save_trace(trace, str(tmp_path / ("%s-%d.gsitrace" % (name, i)))))
        assert shas[0] == shas[1]


class TestOversizedFanOut:
    """A memory instruction touching more lines than the MSHR / store
    buffer holds must serialize through the resource, not deadlock (the
    transpose scatter is exactly this shape under small-buffer sweeps)."""

    @pytest.mark.parametrize("proto", [Protocol.GPU_COHERENCE, Protocol.DENOVO])
    def test_scatter_store_smaller_buffer_than_warp(self, proto):
        wl, system, result = _run(
            "transpose", proto,
            extra_cfg={"store_buffer_entries": 4, "mshr_entries": 8},
        )
        assert wl.verify(system)
        assert result.breakdown.counts[StallType.MEM_STRUCT] > 0

    def test_smaller_buffer_costs_cycles(self):
        _, _, big = _run("transpose")
        _, _, small = _run(
            "transpose", extra_cfg={"store_buffer_entries": 2, "mshr_entries": 4}
        )
        assert small.cycles > big.cycles

    def test_gather_load_smaller_mshr_than_fanout(self):
        # 16 distinct lines in one gather against a 4-entry MSHR: issued
        # in waves as completions free entries, not deadlocked.
        from repro.gpu.instruction import Instruction
        from repro.gpu.kernel import uniform_grid
        from repro.workloads.base import REGION_ARRAY, Workload

        class WideGather(Workload):
            name = "wide_gather"

            def build(self, system):
                cfg = system.config

                def factory(tb, w):
                    def program(ctx):
                        for _ in range(2):
                            yield Instruction.load(
                                [REGION_ARRAY + i * cfg.line_size
                                 for i in range(16)],
                                dst=1,
                            )
                            yield Instruction.alu(dst=2, srcs=(1,))

                    return program

                return uniform_grid(self.name, 1, 1, factory)

        system = System(SystemConfig(num_sms=1, mshr_entries=4,
                                     store_buffer_entries=4))
        result = system.run(WideGather())
        assert result.cycles > 0
        assert system.sms[0].l1.mshr.occupancy == 0

    @pytest.mark.parametrize("cfg", [
        {"num_sms": 2, "store_buffer_entries": 4, "mshr_entries": 8},
        {"num_sms": 2, "store_buffer_entries": 2, "mshr_entries": 4},
    ])
    def test_record_replay_exact_under_oversized_bursts(self, cfg):
        # The replayer mirrors the oversized admission (whole-instruction
        # against an idle resource, wave/drip-fed), so --verify exactness
        # holds even when every scatter overflows the buffers.
        from repro.trace import (
            compare_memory_stats,
            compare_recorded_breakdown,
            memory_side_stats,
            record_workload,
            replay_trace,
        )

        wargs = {"n": 32}
        result, trace = record_workload(
            SystemConfig().scaled(**cfg),
            make_workload("transpose", **wargs),
            name="transpose",
            workload_args=wargs,
        )
        replayed = replay_trace(trace)
        mismatches = compare_memory_stats(
            trace.recorded_stats, memory_side_stats(replayed.stats)
        )
        mismatches += compare_recorded_breakdown(trace, replayed)
        assert not mismatches, mismatches
        assert replayed.cycles == result.cycles

    def test_gather_wave_survives_dma_stealing_mshr_slots(self):
        # The DMA refill hook sits at resource_freed_hooks[0] and claims
        # freed MSHR entries before the gather's completion callbacks run;
        # the wave feeder must restart a stranded wave or the run hangs.
        from repro.gpu.instruction import Instruction
        from repro.gpu.kernel import uniform_grid
        from repro.sim.config import LocalMemory
        from repro.workloads.base import REGION_ARRAY, Workload

        from repro.gpu.instruction import Space

        class DmaPlusGather(Workload):
            name = "dma_plus_gather"

            def configure(self, config):
                return config.scaled(local_memory=LocalMemory.SCRATCHPAD_DMA)

            def build(self, system):
                cfg = system.config

                def factory(tb, w):
                    def program(ctx):
                        if w == 0:
                            # delayed long DMA: its refill hook is hungry
                            # exactly while the gather's waves complete
                            # (this shape strands the wave without the
                            # feeder -- "ran out of events")
                            yield Instruction.alu(dst=1)
                            yield Instruction.dma_to_scratch(
                                0, REGION_ARRAY + 0x10_0000, 64 * cfg.line_size
                            )
                            yield Instruction.load([0], dst=1, space=Space.SCRATCH)
                        else:
                            for r in range(2):
                                yield Instruction.load(
                                    [REGION_ARRAY + (r * 64 + i) * cfg.line_size
                                     for i in range(8)],
                                    dst=1,
                                )
                                yield Instruction.alu(dst=2, srcs=(1,))

                    return program

                return uniform_grid(self.name, 1, 2, factory)

        system = System(DmaPlusGather().configure(
            SystemConfig(num_sms=1, mshr_entries=2, store_buffer_entries=4)
        ))
        result = system.run(DmaPlusGather())
        assert result.cycles > 0

    def test_younger_store_waits_behind_deferred_queue(self):
        # While an oversized burst's overflow is queued, any younger store
        # -- even a 1-line one -- must be rejected (program-order pacing
        # the replayer also relies on).
        from repro.mem.coherence.gpu_coherence import GpuCoherence
        from tests.test_memory_system import MiniSystem

        sys_ = MiniSystem(GpuCoherence, SystemConfig(store_buffer_entries=2))
        l1 = sys_.l1s[0]
        l1.store_lines([0x40 * i for i in range(1, 6)])  # 5 lines > 2 slots
        assert l1._deferred_stores
        assert not l1.can_accept_store(0x2000 >> 6)
        assert not l1.can_accept_stores([0x2000 >> 6])

    def test_release_waits_for_deferred_store_lines(self):
        # A lock handoff right after an oversized scatter: the release
        # must cover the queued overflow lines (program order), so the
        # run completes and the data is globally visible.
        from repro.gpu.instruction import Instruction
        from repro.gpu.kernel import uniform_grid
        from repro.workloads.base import REGION_ARRAY, REGION_LOCKS, Workload

        class ScatterThenRelease(Workload):
            name = "scatter_release"

            def build(self, system):
                cfg = system.config

                def factory(tb, w):
                    def program(ctx):
                        yield Instruction.store(
                            [REGION_ARRAY + i * cfg.line_size for i in range(12)]
                        )
                        yield Instruction.atomic_exch(
                            REGION_LOCKS, 1, release=True
                        )

                    return program

                return uniform_grid(self.name, 1, 1, factory)

        system = System(SystemConfig(num_sms=1, store_buffer_entries=4))
        result = system.run(ScatterThenRelease())
        assert result.cycles > 0
        assert system.sms[0].l1.sb_empty()
