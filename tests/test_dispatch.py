"""Tests for the distributed campaign queue (experiments/dispatch.py):
queue creation/attach, claim-by-rename leases, expired-lease reclaim,
record->replay dependency gating, failure propagation, the coordinator's
merge (byte identity with the in-process planned run), and crash-resume
after a SIGKILLed worker."""

import json
import multiprocessing
import os
import signal
import time

import pytest

from repro import cli
from repro.experiments.campaign import CampaignSpec, run_campaign
from repro.experiments.dispatch import (
    QueueError,
    _claim_next,
    create_or_attach_queue,
    load_manifest,
    reclaim_expired,
    run_campaign_distributed,
    run_worker,
)
from repro.experiments.plan import build_plan

TINY = {
    "name": "tiny",
    "workloads": [
        {"name": "hist", "workload": "histogram",
         "workload_args": {"elements_per_warp": 4}, "config": {"num_sms": 2}},
        {"name": "gups", "workload": "gups",
         "workload_args": {"updates_per_warp": 8}, "config": {"num_sms": 2}},
    ],
    "hierarchies": {"default": None},
    "protocols": ["gpu", "denovo"],
}

#: one workload whose record cell runs ~1s -- long enough to SIGKILL a
#: worker mid-simulation deterministically
SLOW = {
    "name": "slow",
    "workloads": [
        {"name": "hist", "workload": "histogram",
         "workload_args": {"elements_per_warp": 600}, "config": {"num_sms": 2}},
    ],
    "hierarchies": {"default": None},
    "protocols": ["gpu", "denovo"],
}


def spec_of(data) -> CampaignSpec:
    return CampaignSpec.from_dict(json.loads(json.dumps(data)))


def make_queue(tmp_path, data=TINY):
    queue = str(tmp_path / "q")
    plan = build_plan(spec_of(data).scenarios(), str(tmp_path / "traces"))
    create_or_attach_queue(queue, plan, data["name"], str(tmp_path / "cache"))
    return queue, plan


def stable(record) -> str:
    data = record.to_dict()
    data.pop("elapsed_s")
    data.pop("cached")
    return json.dumps(data, sort_keys=True)


class TestQueueSetup:
    def test_layout_and_manifest(self, tmp_path):
        queue, plan = make_queue(tmp_path)
        for state in ("todo", "claimed", "done", "failed"):
            assert os.path.isdir(os.path.join(queue, state))
        manifest = load_manifest(queue)
        assert manifest["total"] == 4
        assert manifest["plan_id"] == plan.identity()
        assert len(os.listdir(os.path.join(queue, "todo"))) == 4

    def test_replay_tasks_carry_record_dependency(self, tmp_path):
        queue, plan = make_queue(tmp_path)
        replay = json.load(open(os.path.join(queue, "todo", "0001.json")))
        assert replay["kind"] == "replay"
        assert replay["after"] == "0000"

    def test_attach_with_other_plan_refused(self, tmp_path):
        queue, _ = make_queue(tmp_path)
        other = build_plan(spec_of(SLOW).scenarios(), str(tmp_path / "traces"))
        with pytest.raises(QueueError, match="refusing to enqueue"):
            create_or_attach_queue(queue, other, "slow", str(tmp_path / "cache"))

    def test_attach_same_plan_is_idempotent(self, tmp_path):
        queue, plan = make_queue(tmp_path)
        create_or_attach_queue(queue, plan, "tiny", str(tmp_path / "cache"))
        assert len(os.listdir(os.path.join(queue, "todo"))) == 4

    def test_load_manifest_on_non_queue(self, tmp_path):
        with pytest.raises(QueueError, match="not a campaign queue"):
            load_manifest(str(tmp_path / "nowhere"))


class TestLeases:
    def test_claim_is_exclusive_and_ordered(self, tmp_path):
        queue, _ = make_queue(tmp_path)
        first = _claim_next(queue)
        assert first["id"] == "0000" and first["kind"] == "record"
        # next claimable is the other workload's record; both replays wait
        # on traces that don't exist yet
        second = _claim_next(queue)
        assert second["id"] == "0002" and second["kind"] == "record"
        assert _claim_next(queue) is None
        assert sorted(os.listdir(os.path.join(queue, "claimed"))) == [
            "0000.json", "0002.json"
        ]

    def test_reclaim_expired_exactly_once(self, tmp_path):
        queue, _ = make_queue(tmp_path)
        task = _claim_next(queue)
        assert reclaim_expired(queue, max_age_s=3600.0) == []  # lease fresh
        assert reclaim_expired(queue, max_age_s=0.0) == [task["id"]]
        assert reclaim_expired(queue, max_age_s=0.0) == []  # already back
        assert os.path.exists(os.path.join(queue, "todo", "0000.json"))

    def test_reclaim_drops_lease_of_completed_task(self, tmp_path):
        queue, _ = make_queue(tmp_path)
        task = _claim_next(queue)
        # worker finished (marker written) but died before removing the
        # lease: reclaim must drop it, not re-issue the task
        with open(os.path.join(queue, "done", "0000.json"), "w") as fh:
            json.dump({"id": "0000"}, fh)
        assert reclaim_expired(queue, max_age_s=0.0) == []
        assert not os.path.exists(os.path.join(queue, "claimed", "0000.json"))
        assert not os.path.exists(os.path.join(queue, "todo", "0000.json"))


class TestWorker:
    def test_drains_queue_and_reports_stats(self, tmp_path):
        queue, plan = make_queue(tmp_path)
        stats = run_worker(queue, poll_s=0.01)
        assert stats["claimed"] == 4
        assert stats["executed"] == 4
        assert stats["failed"] == 0
        assert len(os.listdir(os.path.join(queue, "done"))) == 4
        assert os.listdir(os.path.join(queue, "claimed")) == []
        # results landed in the shared cache, traces in the trace store
        assert len(os.listdir(tmp_path / "cache")) == 4
        assert len(os.listdir(tmp_path / "traces")) == 2

    def test_max_tasks_stops_early(self, tmp_path):
        queue, _ = make_queue(tmp_path)
        stats = run_worker(queue, poll_s=0.01, max_tasks=1)
        assert stats["claimed"] == 1

    def test_second_worker_serves_from_cache(self, tmp_path):
        queue, plan = make_queue(tmp_path)
        run_worker(queue, poll_s=0.01)
        # wipe markers, keep the cache: a re-run claims every task again
        # but serves all of them from the shared result cache
        for name in os.listdir(os.path.join(queue, "done")):
            os.remove(os.path.join(queue, "done", name))
        create_or_attach_queue(str(tmp_path / "q"), plan, "tiny",
                               str(tmp_path / "cache"))
        stats = run_worker(queue, poll_s=0.01)
        assert stats["cached"] == 4
        assert stats["executed"] == 0

    def test_failed_record_fails_dependent_replays(self, tmp_path):
        queue, plan = make_queue(tmp_path)
        # poison the first record task: its trace workload path never
        # exists, so key() (content fingerprint) raises inside the worker
        bad = {"id": "0000", "kind": "record",
               "scenario": {"name": "hist/default/gpu", "workload": "trace",
                            "workload_args": {"path": str(tmp_path / "no.gsitrace")},
                            "config": {}, "expect": {}},
               "record_to": str(tmp_path / "traces" / "never.gsitrace"),
               "group": "g"}
        with open(os.path.join(queue, "todo", "0000.json"), "w") as fh:
            json.dump(bad, fh)
        stats = run_worker(queue, poll_s=0.01)
        assert stats["failed"] == 2  # the record and its dependent replay
        failed = sorted(os.listdir(os.path.join(queue, "failed")))
        assert failed == ["0000.json", "0001.json"]
        dependent = json.load(open(os.path.join(queue, "failed", "0001.json")))
        assert "record task 0000 failed" in dependent["error"]


class TestCoordinator:
    def test_distributed_matches_planned_serial(self, tmp_path):
        spec = spec_of(TINY)
        traces = str(tmp_path / "traces")
        serial = run_campaign(spec, jobs=1, cache_dir=str(tmp_path / "c1"),
                              plan=True, trace_dir=traces)
        dist = run_campaign_distributed(
            spec_of(TINY), workers=2, queue_dir=str(tmp_path / "q"),
            cache_dir=str(tmp_path / "c2"), trace_dir=traces, poll_s=0.01,
        )
        assert [stable(r) for r in serial.records] \
            == [stable(r) for r in dist.records]
        assert dist.to_csv() == serial.to_csv()
        assert dist.replayed_count == 2

    def test_progress_and_second_invocation_cached(self, tmp_path):
        calls = []
        dist = run_campaign_distributed(
            spec_of(TINY), workers=2, queue_dir=str(tmp_path / "q"),
            cache_dir=str(tmp_path / "c"), poll_s=0.01,
            progress=lambda *a: calls.append(a),
        )
        assert len(calls) == 4
        assert [c[3] for c in calls] == [1, 2, 3, 4]
        assert not dist.fully_cached
        again = run_campaign_distributed(
            spec_of(TINY), workers=2, queue_dir=str(tmp_path / "q"),
            cache_dir=str(tmp_path / "c"), poll_s=0.01,
        )
        assert again.fully_cached
        assert [stable(r) for r in again.records] \
            == [stable(r) for r in dist.records]

    def test_zero_workers_merges_settled_queue(self, tmp_path):
        queue, plan = make_queue(tmp_path)
        run_worker(queue, poll_s=0.01)
        result = run_campaign_distributed(
            spec_of(TINY), workers=0, queue_dir=queue,
            cache_dir=str(tmp_path / "cache"),
            trace_dir=str(tmp_path / "traces"), poll_s=0.01,
        )
        assert len(result.records) == 4
        assert result.fully_cached  # settled before this invocation

    def test_failed_cell_raises(self, tmp_path):
        queue = str(tmp_path / "q")
        for state in ("todo", "claimed", "done", "failed"):
            os.makedirs(os.path.join(queue, state))
        with open(os.path.join(queue, "failed", "0000.json"), "w") as fh:
            json.dump({"id": "0000", "name": "hist/default/gpu",
                       "error": "boom", "worker": "w0"}, fh)
        with pytest.raises(QueueError, match="boom"):
            run_campaign_distributed(
                spec_of(TINY), workers=1, queue_dir=queue,
                cache_dir=str(tmp_path / "cache"),
                trace_dir=str(tmp_path / "traces"), poll_s=0.01,
            )

    def test_pruned_cache_under_queue_raises(self, tmp_path):
        queue, plan = make_queue(tmp_path)
        run_worker(queue, poll_s=0.01)
        for name in os.listdir(tmp_path / "cache"):
            if name.endswith(".json"):
                os.remove(tmp_path / "cache" / name)
        with pytest.raises(QueueError, match="missing"):
            run_campaign_distributed(
                spec_of(TINY), workers=0, queue_dir=queue,
                cache_dir=str(tmp_path / "cache"),
                trace_dir=str(tmp_path / "traces"), poll_s=0.01,
            )


class TestCrashResume:
    def test_sigkilled_worker_resumes_without_loss(self, tmp_path):
        queue, plan = make_queue(tmp_path, SLOW)
        claimed_dir = os.path.join(queue, "claimed")

        worker = multiprocessing.Process(
            target=run_worker, args=(queue,), kwargs={"poll_s": 0.01},
        )
        worker.start()
        try:
            deadline = time.time() + 30.0
            while not os.listdir(claimed_dir):
                assert time.time() < deadline, "worker never claimed a task"
                time.sleep(0.002)
            # the record cell (~1s of simulation) is mid-flight: kill -9
            os.kill(worker.pid, signal.SIGKILL)
        finally:
            worker.join(timeout=10.0)
        assert os.listdir(claimed_dir) == ["0000.json"]  # lease leaked
        assert os.listdir(os.path.join(queue, "done")) == []

        # the expired lease is reclaimed exactly once
        assert reclaim_expired(queue, max_age_s=0.0) == ["0000"]
        assert reclaim_expired(queue, max_age_s=0.0) == []

        # a fresh worker against the same queue finishes the campaign
        stats = run_worker(queue, poll_s=0.01)
        assert stats["failed"] == 0
        assert stats["executed"] == 2  # killed cell ran once, not twice
        done = sorted(os.listdir(os.path.join(queue, "done")))
        assert done == ["0000.json", "0001.json"]
        assert os.listdir(claimed_dir) == []

        # merged results are bit-identical to an untouched serial run
        merged = run_campaign_distributed(
            spec_of(SLOW), workers=0, queue_dir=queue,
            cache_dir=str(tmp_path / "cache"),
            trace_dir=str(tmp_path / "traces"), poll_s=0.01,
        )
        serial = run_campaign(spec_of(SLOW), jobs=1,
                              cache_dir=str(tmp_path / "c-serial"),
                              plan=True, trace_dir=str(tmp_path / "traces"))
        assert [stable(r) for r in merged.records] \
            == [stable(r) for r in serial.records]


class TestWorkerCli:
    def test_worker_command_drains_queue(self, tmp_path, capsys):
        queue, _ = make_queue(tmp_path)
        rc = cli.main(["worker", "--queue", queue, "--poll", "0.01"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "4 claimed" in out and "4 executed" in out

    def test_worker_command_on_non_queue(self, tmp_path, capsys):
        rc = cli.main(["worker", "--queue", str(tmp_path / "nope")])
        assert rc == 2
        assert "not a campaign queue" in capsys.readouterr().err

    def test_campaign_no_plan_with_workers_rejected(self, capsys):
        rc = cli.main(["campaign", "--fast", "--workers", "2", "--no-plan"])
        assert rc == 2
        assert "replay-first" in capsys.readouterr().err
