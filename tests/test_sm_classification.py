"""End-to-end stall classification: run small kernels and assert the
dominant stall type matches the engineered bottleneck.

These are the system-level contract tests for GSI: each synthetic workload
is built to make one stall class dominate, so a classification regression
shows up as the wrong dominant cause.
"""

import pytest

from repro.core.stall_types import MemStructCause, ServiceLocation, StallType
from repro.gpu.instruction import Instruction
from repro.gpu.kernel import uniform_grid
from repro.sim.config import SystemConfig
from repro.system import System, run_workload
from repro.workloads.synthetic import (
    BurstStoreWorkload,
    ComputeHeavyWorkload,
    IdleTailWorkload,
    LockContentionWorkload,
    PointerChaseWorkload,
    StreamingWorkload,
)


def dominant_stall(breakdown):
    return max(StallType, key=lambda s: breakdown.counts[s])


def dominant_non_issue(breakdown):
    stalls = {s: n for s, n in breakdown.counts.items() if s is not StallType.NO_STALL}
    return max(stalls, key=stalls.get)


class TestDominantCauses:
    def test_pointer_chase_is_memory_data_bound(self):
        r = run_workload(SystemConfig(num_sms=2), PointerChaseWorkload())
        assert dominant_stall(r.breakdown) is StallType.MEM_DATA
        # Chain lines are distinct: serviced at L2 or memory, never remote.
        assert r.breakdown.mem_data[ServiceLocation.REMOTE_L1] == 0

    def test_lock_contention_is_sync_bound(self):
        r = run_workload(SystemConfig(num_sms=4), LockContentionWorkload())
        assert dominant_non_issue(r.breakdown) is StallType.SYNC

    def test_compute_heavy_has_compute_stalls_only(self):
        r = run_workload(SystemConfig(num_sms=2), ComputeHeavyWorkload())
        bd = r.breakdown
        assert bd.counts[StallType.MEM_DATA] == 0
        assert bd.counts[StallType.MEM_STRUCT] == 0
        assert bd.counts[StallType.COMP_DATA] > 0

    def test_burst_store_hits_store_buffer_limit(self):
        r = run_workload(
            SystemConfig(num_sms=1, store_buffer_entries=4), BurstStoreWorkload()
        )
        assert r.breakdown.mem_struct[MemStructCause.STORE_BUFFER_FULL] > 0

    def test_idle_tail_shows_idle_stalls(self):
        r = run_workload(SystemConfig(num_sms=4), IdleTailWorkload())
        assert r.breakdown.counts[StallType.IDLE] > 0

    def test_streaming_total_is_execution_time_times_sms(self):
        cfg = SystemConfig(num_sms=2)
        r = run_workload(cfg, StreamingWorkload(num_tbs=2))
        assert r.breakdown.total_cycles == cfg.num_sms * r.cycles


class TestBreakdownInvariants:
    @pytest.fixture(scope="class")
    def result(self):
        return run_workload(SystemConfig(num_sms=2), StreamingWorkload())

    def test_per_sm_sums_to_aggregate(self, result):
        from repro.core.breakdown import StallBreakdown

        merged = StallBreakdown.merged(result.per_sm)
        assert merged.counts == result.breakdown.counts

    def test_every_cycle_is_attributed(self, result):
        for sm_bd in result.per_sm:
            assert sm_bd.total_cycles == result.cycles

    def test_subtaxonomies_consistent(self, result):
        result.breakdown.validate()

    def test_instructions_issued_match_no_stall_floor(self, result):
        # With issue_width=1, issued instructions == no-stall cycles.
        assert result.instructions == result.breakdown.counts[StallType.NO_STALL]


class TestControlStalls:
    def test_fetch_delay_produces_control_stalls(self):
        def factory(tb, w):
            def program(ctx):
                for _ in range(20):
                    yield Instruction.nop(fetch_delay=5)

            return program

        kernel = uniform_grid("control", 1, 1, factory)
        system = System(SystemConfig(num_sms=1))
        r = system.run_kernel(kernel)
        assert r.breakdown.counts[StallType.CONTROL] > 50


class TestMshrPressure:
    def test_small_mshr_creates_structural_stalls(self):
        small = run_workload(
            SystemConfig(num_sms=1, mshr_entries=2),
            StreamingWorkload(num_tbs=1, warps_per_tb=4),
        )
        big = run_workload(
            SystemConfig(num_sms=1, mshr_entries=64),
            StreamingWorkload(num_tbs=1, warps_per_tb=4),
        )
        assert (
            small.breakdown.mem_struct[MemStructCause.MSHR_FULL]
            > big.breakdown.mem_struct[MemStructCause.MSHR_FULL]
        )
        assert small.cycles >= big.cycles


class TestL1Coalescing:
    def test_concurrent_warps_same_line_coalesce(self):
        """Two warps load the same cold line: warp 0 fire-and-forget (the
        primary miss), warp 1 dependent (the secondary miss).  Warp 1 is the
        only stalled warp, so the cycle detail is its access group, which
        resolves to L1_COALESCE when the primary's response services it."""

        def factory(tb, w):
            def program(ctx):
                if w == 0:
                    yield Instruction.load([0x5_0000])
                else:
                    yield Instruction.load(
                        [0x5_0000], dst=1, returns_value=True, value_addr=0x5_0000
                    )

            return program

        kernel = uniform_grid("coalesce", 1, 2, factory)
        system = System(SystemConfig(num_sms=1))
        r = system.run_kernel(kernel)
        assert r.breakdown.mem_data[ServiceLocation.L1_COALESCE] > 0
        assert r.stats["l1"]["sm0"]["mshr_merges"] == 1


class TestGsiDisabled:
    def test_disabled_inspector_records_nothing(self):
        r = run_workload(
            SystemConfig(num_sms=2, gsi_enabled=False), StreamingWorkload()
        )
        assert r.breakdown.total_cycles == 0
        assert r.cycles > 0  # the simulation itself still ran

    def test_disabled_matches_enabled_timing(self):
        """GSI is observational: turning it off must not change timing."""
        on = run_workload(SystemConfig(num_sms=2), StreamingWorkload())
        off = run_workload(
            SystemConfig(num_sms=2, gsi_enabled=False), StreamingWorkload()
        )
        assert on.cycles == off.cycles
