"""Unit tests for warp state, program advancement, and kernel plumbing."""

import random

import pytest

from repro.gpu.instruction import Instruction
from repro.gpu.kernel import (
    Kernel,
    ThreadBlock,
    WarpContext,
    uniform_grid,
)
from repro.gpu.warp import Warp
from repro.mem.main_memory import GlobalMemory


def make_ctx(**overrides):
    defaults = dict(
        sm_id=0,
        tb_id=0,
        warp_id=0,
        warp_index=0,
        num_warps_in_tb=1,
        rng=random.Random(0),
        memory=GlobalMemory(),
    )
    defaults.update(overrides)
    return WarpContext(**defaults)


class TestWarpAdvancement:
    def test_prime_fetches_first_instruction(self):
        def program(ctx):
            yield Instruction.alu(dst=1)
            yield Instruction.alu(dst=2)

        warp = Warp(make_ctx(), program(make_ctx()))
        warp.prime()
        assert warp.current is not None
        assert warp.current.dst == 1
        assert not warp.finished

    def test_advance_walks_the_stream(self):
        def program(ctx):
            yield Instruction.alu(dst=1)
            yield Instruction.alu(dst=2)

        warp = Warp(make_ctx(), program(make_ctx()))
        warp.prime()
        warp.instructions_issued += 1
        warp.advance(None)
        assert warp.current.dst == 2
        warp.instructions_issued += 1
        warp.advance(None)
        assert warp.finished
        assert warp.current is None

    def test_value_flows_into_program(self):
        seen = []

        def program(ctx):
            v = yield Instruction.load([0], dst=1, returns_value=True)
            seen.append(v)

        warp = Warp(make_ctx(), program(make_ctx()))
        warp.prime()
        warp.instructions_issued += 1
        warp.advance(42)
        assert seen == [42]
        assert warp.finished

    def test_empty_program_finishes_at_prime(self):
        def program(ctx):
            return
            yield  # pragma: no cover

        warp = Warp(make_ctx(), program(make_ctx()))
        warp.prime()
        assert warp.finished

    def test_waiting_flags_reset_on_advance(self):
        def program(ctx):
            yield Instruction.alu()
            yield Instruction.alu()

        warp = Warp(make_ctx(), program(make_ctx()))
        warp.prime()
        warp.waiting_value = True
        warp.value_producer = ("mem", 7)
        warp.instructions_issued += 1
        warp.advance(None)
        assert not warp.waiting_value
        assert warp.value_producer is None


class TestWarpContext:
    def test_peek_word_reads_functional_memory(self):
        mem = GlobalMemory()
        mem.store_word(0x40, 11)
        ctx = make_ctx(memory=mem)
        assert ctx.peek_word(0x40) == 11


class TestKernelStructure:
    def test_uniform_grid_shapes(self):
        kernel = uniform_grid(
            "k", 3, 2, lambda tb, w: lambda ctx: iter(())
        )
        assert kernel.num_thread_blocks == 3
        assert kernel.total_warps == 6
        assert all(tb.num_warps == 2 for tb in kernel.thread_blocks)

    def test_validate_warp_limit(self):
        kernel = uniform_grid("k", 1, 4, lambda tb, w: lambda ctx: iter(()))
        with pytest.raises(ValueError):
            kernel.validate(max_warps_per_sm=2)
        kernel.validate(max_warps_per_sm=4)

    def test_validate_empty(self):
        with pytest.raises(ValueError):
            Kernel("k", []).validate(8)
        with pytest.raises(ValueError):
            Kernel("k", [ThreadBlock(0, [])]).validate(8)

    def test_factory_receives_coordinates(self):
        got = []

        def factory(tb, w):
            got.append((tb, w))
            return lambda ctx: iter(())

        uniform_grid("k", 2, 2, factory)
        assert got == [(0, 0), (0, 1), (1, 0), (1, 1)]
