"""Unit tests for the per-warp scoreboard."""

from repro.gpu.scoreboard import ProducerKind, Scoreboard


class TestHazards:
    def test_no_hazard_on_clean_regs(self):
        sb = Scoreboard()
        assert sb.hazard((1, 2, 3), now=0) is None

    def test_compute_hazard_until_ready(self):
        sb = Scoreboard()
        sb.set_compute(1, ready_cycle=10)
        kind, detail = sb.hazard((1,), now=5)
        assert kind is ProducerKind.COMPUTE and detail == 10
        assert sb.hazard((1,), now=10) is None
        # the entry retired lazily
        assert sb.pending_count(now=10) == 0

    def test_memory_hazard_until_cleared(self):
        sb = Scoreboard()
        sb.set_memory(2, tag=99)
        kind, detail = sb.hazard((2,), now=1000)
        assert kind is ProducerKind.MEMORY and detail == 99
        sb.clear_memory_tag(99)
        assert sb.hazard((2,), now=1000) is None

    def test_memory_hazard_outranks_compute(self):
        """Algorithm 1 checks the pending-load hazard first."""
        sb = Scoreboard()
        sb.set_compute(1, ready_cycle=50)
        sb.set_memory(2, tag=7)
        kind, detail = sb.hazard((1, 2), now=0)
        assert kind is ProducerKind.MEMORY and detail == 7

    def test_clear_memory_tag_clears_all_matching(self):
        sb = Scoreboard()
        sb.set_memory(1, tag=5)
        sb.set_memory(2, tag=5)
        sb.set_memory(3, tag=6)
        sb.clear_memory_tag(5)
        assert sb.hazard((1, 2), now=0) is None
        assert sb.hazard((3,), now=0) is not None

    def test_overwrite_producer(self):
        sb = Scoreboard()
        sb.set_compute(1, ready_cycle=10)
        sb.set_memory(1, tag=3)
        kind, _ = sb.hazard((1,), now=0)
        assert kind is ProducerKind.MEMORY

    def test_clear_single_register(self):
        sb = Scoreboard()
        sb.set_memory(4, tag=1)
        sb.clear(4)
        assert sb.hazard((4,), now=0) is None


class TestWakeHints:
    def test_next_compute_ready(self):
        sb = Scoreboard()
        sb.set_compute(1, ready_cycle=20)
        sb.set_compute(2, ready_cycle=10)
        sb.set_memory(3, tag=1)
        assert sb.next_compute_ready(now=0) == 10
        assert sb.next_compute_ready(now=15) == 20
        assert sb.next_compute_ready(now=25) is None

    def test_pending_count_sweeps_expired(self):
        sb = Scoreboard()
        sb.set_compute(1, ready_cycle=5)
        sb.set_compute(2, ready_cycle=50)
        assert sb.pending_count(now=10) == 1
