#!/usr/bin/env python3
"""Record once, replay many: an MSHR sweep over one recorded UTS trace.

The execution-driven frontend (warps, scoreboard, schedulers) produces the
same memory reference stream at every point of a memory-system sweep, so
it only needs to run once.  This study:

1. records the UTS workload's trace at the LSU->L1 boundary,
2. verifies that replaying it under the identical configuration reproduces
   the memory-side statistics *exactly*, and
3. sweeps the MSHR (store buffer scaled along, as the paper does) by
   replaying the same trace -- no frontend re-execution.

Run:  python examples/trace_replay_study.py
"""

import os
import tempfile
import time

from repro import SystemConfig
from repro.core.report import format_table
from repro.experiments import Scenario, Sweep, execute
from repro.trace import compare_replay, record_workload, replay_trace, save_trace
from repro.workloads import make_workload


def main() -> None:
    print("== 1. record: one execution-driven UTS run ==")
    config = SystemConfig()
    t0 = time.perf_counter()
    result, trace = record_workload(
        config,
        make_workload("uts", total_nodes=80, warps_per_tb=2),
        name="uts",
    )
    exec_s = time.perf_counter() - t0
    print(
        "executed %d cycles in %.1fs; trace: %d events from %d SMs"
        % (result.cycles, exec_s, trace.num_events, trace.num_sms)
    )

    print("\n== 2. replay under the identical configuration ==")
    t0 = time.perf_counter()
    replayed = replay_trace(trace)
    replay_s = time.perf_counter() - t0
    mismatches = compare_replay(result, replayed)
    print(
        "replayed %d cycles in %.1fs (%.1fx faster); memory-side stats: %s"
        % (
            replayed.cycles,
            replay_s,
            exec_s / replay_s,
            "EXACT match" if not mismatches else "%d MISMATCHES" % len(mismatches),
        )
    )

    print("\n== 3. MSHR sweep, replayed from the trace ==")
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "uts.gsitrace")
        save_trace(trace, path)
        base = Scenario("uts-replay", "trace", {"path": path})
        grid = {
            "mshr_entries": [
                {"mshr_entries": n, "store_buffer_entries": n}
                for n in (4, 8, 16, 32)
            ]
        }
        records = execute(Sweep(base, grid).expand())
    print(format_table({r.scenario.name: r.result.breakdown for r in records}))
    for r in records:
        blocked = r.result.stats["replay"]["blocked_cycles"]
        print(
            "  %-28s %8d cycles   back-pressure: mshr %d, store buffer %d"
            % (
                r.scenario.name,
                r.result.cycles,
                blocked["mshr_full"],
                blocked["store_buffer_full"],
            )
        )


if __name__ == "__main__":
    main()
