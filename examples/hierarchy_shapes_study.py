#!/usr/bin/env python3
"""Sweep the memory-hierarchy *shape* itself: default vs. shared L3 vs.
private per-SM L2 vs. L1 bypass.

The hierarchy fabric makes cache topology plain data
(:class:`repro.mem.hierarchy.HierarchySpec`): a scenario's ``config`` block
may carry a ``hierarchy`` override, and a sweep may use ``hierarchy`` as a
grid axis, so shapes parallelize and cache exactly like any other sweep.
This study:

1. sweeps UTS over the three canonical non-default shapes plus the
   Table 5.1 default (one `Sweep`, one executor call),
2. prints where loads were serviced under each shape, and
3. replays a recorded trace of the same workload under the shapes --
   record once, re-shape the memory hierarchy many times.

Run:  python examples/hierarchy_shapes_study.py
"""

import os
import tempfile

from repro import SystemConfig
from repro.core.report import format_table
from repro.experiments import Scenario, Sweep, execute
from repro.mem.hierarchy import example_shapes
from repro.trace import record_workload, save_trace
from repro.workloads import make_workload

WORKLOAD_ARGS = {"total_nodes": 80, "warps_per_tb": 2}


def main() -> None:
    shapes = example_shapes()

    print("== 1. one sweep over four hierarchy shapes ==")
    base = Scenario("uts", "uts", dict(WORKLOAD_ARGS), {"protocol": "denovo"})
    grid = {"hierarchy": list(shapes.values())}
    scenarios = [base] + Sweep(base, grid).expand()
    scenarios[0].name = "uts/default"
    records = execute(scenarios, jobs=2)
    print(format_table({r.scenario.name: r.result.breakdown for r in records}))

    print("== 2. where loads were serviced, per shape ==")
    for r in records:
        stats = r.result.stats
        l1_hits = sum(v["load_hits"] for v in stats["l1"].values())
        print(
            "  %-28s %8d cycles   L1 hits %6d   L2 loads %6d   DRAM %5d"
            % (
                r.scenario.name,
                r.result.cycles,
                l1_hits,
                stats["l2"]["loads"],
                stats["dram"]["accesses"],
            )
        )

    print("\n== 3. record once, re-shape the hierarchy on replay ==")
    _, trace = record_workload(
        SystemConfig(), make_workload("uts", **WORKLOAD_ARGS), name="uts"
    )
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "uts.gsitrace")
        save_trace(trace, path)
        base = Scenario("uts-replay", "trace", {"path": path})
        replays = execute(Sweep(base, {"hierarchy": list(shapes.values())}).expand())
    # Replay timing stays anchored to the recorded issue cycles (the
    # standard trace-driven approximation) -- the re-shaped memory system
    # itself is simulated for real, so the *service* statistics move:
    for r in replays:
        stats = r.result.stats
        l1_hits = sum(v["load_hits"] for v in stats["l1"].values())
        print(
            "  %-36s %8d cycles   L1 hits %6d   L2 loads %6d   DRAM %5d"
            % (
                r.scenario.name,
                r.result.cycles,
                l1_hits,
                stats["l2"]["loads"],
                stats["dram"]["accesses"],
            )
        )


if __name__ == "__main__":
    main()
