#!/usr/bin/env python3
"""Case study 1 in miniature: DeNovo vs GPU coherence on UTS / UTSD.

Reproduces the workflow of Section 6.1 end to end: run the unbalanced tree
search benchmark under both coherence protocols, read the GSI breakdown,
apply the software fix it motivates (decentralizing the task queue), and
verify the fix with a second set of breakdowns.

Run:  python examples/coherence_study.py  [--nodes N]
"""

import argparse

from repro import Protocol, SystemConfig, run_workload
from repro.core.report import (
    format_mem_data_table,
    format_mem_struct_table,
    format_table,
)
from repro.core.stall_types import StallType
from repro.workloads.uts import UtsWorkload, UtsdWorkload


def run_both(wl_cls, nodes: int):
    out = {}
    for proto, label in [
        (Protocol.GPU_COHERENCE, "gpu-coh"),
        (Protocol.DENOVO, "denovo"),
    ]:
        wl = wl_cls(total_nodes=nodes)
        out[label] = run_workload(SystemConfig(protocol=proto), wl)
    return out


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--nodes", type=int, default=80, help="tree size")
    args = parser.parse_args()

    print("== UTS: single global task queue (Section 6.1.3) ==")
    uts = run_both(UtsWorkload, args.nodes)
    print(format_table({k: r.breakdown for k, r in uts.items()}, baseline="gpu-coh"))
    sync = uts["gpu-coh"].breakdown.fraction(StallType.SYNC)
    print(
        "GSI's verdict: %.0f%% of cycles are synchronization stalls -- the\n"
        "global queue lock is the bottleneck, so the profitable fix is in\n"
        "software: decentralize the queue.\n" % (100 * sync)
    )

    print("== UTSD: per-SM queues + global overflow (Section 6.1.4) ==")
    utsd = run_both(UtsdWorkload, args.nodes)
    print(format_table({k: r.breakdown for k, r in utsd.items()}, baseline="gpu-coh"))
    for label in ("gpu-coh", "denovo"):
        red = 1 - utsd[label].cycles / uts[label].cycles
        print(
            "  %s: UTSD is %.0f%% faster than UTS (paper: 91%%/94%%)"
            % (label, 100 * red)
        )

    print()
    print("== Why DeNovo wins on UTSD: the sub-breakdowns ==")
    bd = {k: r.breakdown for k, r in utsd.items()}
    print(format_mem_data_table(bd, baseline="gpu-coh"))
    print(format_mem_struct_table(bd, baseline="gpu-coh"))
    print(
        "Ownership keeps queue data live across acquires (fewer L2-serviced\n"
        "data stalls) and makes release flushes cheap (fewer pending-release\n"
        "structural stalls)."
    )


if __name__ == "__main__":
    main()
