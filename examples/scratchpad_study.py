#!/usr/bin/env python3
"""Case study 2 in miniature: scratchpad vs scratchpad+DMA vs stash.

Reproduces the workflow of Section 6.2: run the implicit microbenchmark on
the three local-memory organizations, read the GSI breakdowns, then use the
MSHR-size sensitivity sweep (Section 6.2.4) that the full-MSHR stalls
motivate.

Run:  python examples/scratchpad_study.py
"""

from repro import SystemConfig, run_workload
from repro.core.energy import compare_energy
from repro.core.report import format_mem_struct_table, format_stacked_bars, format_table
from repro.core.stall_types import MemStructCause, StallType
from repro.workloads.implicit import implicit_variants


def run_all(mshr: int = 32):
    cfg = SystemConfig(mshr_entries=mshr, store_buffer_entries=mshr)
    return {
        name: run_workload(cfg, wl)
        for name, wl in implicit_variants(num_tbs=4, warps_per_tb=8).items()
    }


def main() -> None:
    print("== implicit microbenchmark, 32-entry MSHR (Figure 6.3) ==")
    base = run_all(32)
    bd = {k: r.breakdown for k, r in base.items()}
    print(format_table(bd, baseline="scratchpad"))
    print(format_mem_struct_table(bd, baseline="scratchpad"))
    print(format_stacked_bars(bd, baseline="scratchpad"))

    print(
        "GSI's verdict: the DMA engine and the stash eliminate explicit\n"
        "copy instructions (fewer no-stall cycles) but their higher request\n"
        "rates hit the 32-entry MSHR -- full-MSHR structural stalls.  The\n"
        "motivated hardware change: grow the MSHR.\n"
    )

    print("== MSHR sensitivity (Figure 6.4) ==")
    print("%-16s %6s %10s %10s %10s %10s" % ("config", "mshr", "cycles", "mshr_full", "mem_data", "pend_dma"))
    for mshr in (32, 64, 128, 256):
        results = run_all(mshr)
        for name, r in results.items():
            print(
                "%-16s %6d %10d %10d %10d %10d"
                % (
                    name,
                    mshr,
                    r.cycles,
                    r.breakdown.mem_struct[MemStructCause.MSHR_FULL],
                    r.breakdown.counts[StallType.MEM_DATA],
                    r.breakdown.mem_struct[MemStructCause.PENDING_DMA],
                )
            )
    print(
        "\nLifting the MSHR bottleneck helps every configuration, but the\n"
        "stalls move: the scratchpad's dependent copy stores become memory\n"
        "data stalls, and the DMA's consumers pile up on pending-DMA stalls."
    )

    print("\n== energy view (activity-based accounting) ==")
    print(compare_energy(base))


if __name__ == "__main__":
    main()
