#!/usr/bin/env python3
"""Regenerate every table and figure from the paper in one go.

Demonstrates the declarative experiment stack end to end:

1. the bundled artifacts, regenerated through the runner (which itself
   declares each figure as a scenario grid and hands it to the executor),
   fanned out over ``--jobs`` worker processes and served from ``--cache``
   on reruns;
2. a *custom* scenario sweep -- the paper's MSHR sensitivity study extended
   to the UTSD workload, something the paper never ran -- in ~10 lines of
   spec, no new figure function needed.

Run:  python examples/regenerate_figures.py --fast --jobs 4
"""

import argparse
import sys

from repro.core.report import format_table
from repro.experiments.executor import execute, results_by_name
from repro.experiments.runner import main as regenerate
from repro.experiments.spec import Scenario, Sweep


def custom_sweep(jobs: int, cache_dir: str | None, fast: bool) -> str:
    """UTSD under both protocols across MSHR sizes: a user-defined grid."""
    base = Scenario(
        name="utsd",
        workload="utsd",
        workload_args={"total_nodes": 40 if fast else 100, "warps_per_tb": 2},
        expect={"dominant_stall": "synchronization"},
    )
    grid = {
        "protocol": ["gpu", "denovo"],
        "mshr_entries": [
            {"mshr_entries": size, "store_buffer_entries": size}
            for size in ((32, 256) if fast else (32, 64, 128, 256))
        ],
    }
    records = execute(Sweep(base, grid).expand(), jobs=jobs, cache_dir=cache_dir)
    breakdowns = {k: r.breakdown for k, r in results_by_name(records).items()}
    lines = ["=== custom sweep: UTSD protocol x MSHR grid ==="]
    for record in records:
        lines.append(
            "  %-45s %9d cycles  %s"
            % (
                record.scenario.name,
                record.result.cycles,
                "cached" if record.cached else "%.2fs" % record.elapsed_s,
            )
        )
    lines.append("")
    lines.append(format_table(breakdowns, title="UTSD sweep breakdown"))
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fast", action="store_true")
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--cache", default=None)
    parser.add_argument(
        "--skip-figures", action="store_true",
        help="only run the custom sweep demo",
    )
    args = parser.parse_args(argv)

    if not args.skip_figures:
        runner_args = []
        if args.fast:
            runner_args.append("--fast")
        runner_args += ["--jobs", str(args.jobs)]
        if args.cache:
            runner_args += ["--cache", args.cache]
        code = regenerate(runner_args)
        if code:
            return code
        print()
    print(custom_sweep(args.jobs, args.cache, args.fast))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
