#!/usr/bin/env python3
"""Regenerate every table and figure from the paper in one go.

Thin wrapper over :mod:`repro.experiments.runner`; identical to
``python -m repro.experiments`` but kept here so the examples directory
demonstrates the whole public surface.

Run:  python examples/regenerate_figures.py --fast
"""

import sys

from repro.experiments.runner import main

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
