#!/usr/bin/env python3
"""Windowed stall timelines: watching a kernel's phases.

An AerialVision-inspired extension of GSI (Chapter 3 discusses
AerialVision's per-interval plots): the same Algorithm-2 attribution,
bucketed over time.  The implicit microbenchmark makes the phases obvious --
DMA fill (memory structural), compute (no-stall), writeback tail.

Run:  python examples/timeline_phases.py
"""

from repro import SystemConfig, run_workload
from repro.core.timeline import render_timeline
from repro.workloads.implicit import ImplicitDma, ImplicitScratchpad
from repro.workloads.uts import UtsdWorkload


def main() -> None:
    window = 256

    print("== implicit on scratchpad+DMA: fill / compute phases ==")
    r = run_workload(
        SystemConfig(timeline_window=window),
        ImplicitDma(num_tbs=2, warps_per_tb=8),
    )
    print(render_timeline(r.timeline))

    print("== implicit on the explicit scratchpad baseline ==")
    r = run_workload(
        SystemConfig(timeline_window=window),
        ImplicitScratchpad(num_tbs=2, warps_per_tb=8),
    )
    print(render_timeline(r.timeline))

    print("== UTSD: lock convoys over time (4 SMs) ==")
    r = run_workload(
        SystemConfig(num_sms=4, timeline_window=window),
        UtsdWorkload(total_nodes=60, warps_per_tb=2),
    )
    print(render_timeline(r.timeline))
    phases = r.timeline.dominant_series()
    print("dominant cause per window:")
    print("  " + " ".join(p.value[:4] for p in phases[:16]) + " ...")


if __name__ == "__main__":
    main()
