#!/usr/bin/env python3
"""Writing your own workload: a histogram kernel with privatization.

Shows the full extension surface of the library:

* warp programs as generators (data-dependent control flow through
  ``returns_value`` instructions),
* a custom :class:`~repro.workloads.base.Workload` with its own memory
  layout and configuration,
* using GSI to compare two algorithmic variants -- a shared global
  histogram updated with atomics vs. per-SM private histograms merged at
  the end (the classic privatization optimization).

Run:  python examples/custom_workload.py
"""

from repro import StallType, SystemConfig, run_workload
from repro.core.report import format_table
from repro.gpu.instruction import Instruction
from repro.gpu.kernel import uniform_grid
from repro.workloads.base import REGION_ARRAY, REGION_COUNTERS, Workload

BINS = 16
ITEMS_PER_WARP = 48


class HistogramWorkload(Workload):
    """Each warp classifies items and bumps a histogram bin per item."""

    def __init__(self, privatized: bool, num_tbs: int = 8, warps_per_tb: int = 8):
        self.privatized = privatized
        self.name = "histogram-private" if privatized else "histogram-shared"
        self.num_tbs = num_tbs
        self.warps_per_tb = warps_per_tb

    def bin_addr(self, sm_id: int, b: int) -> int:
        if self.privatized:
            # One histogram per SM, each bin on its own line: atomics spread
            # across L2 banks and never contend across SMs.
            return REGION_COUNTERS + (sm_id * BINS + b) * 64
        # Shared histogram laid out densely (16 bins x 4 B = one cache
        # line): every atomic from every SM serializes at one L2 bank.
        return REGION_COUNTERS + b * 4

    def build(self, system):
        cfg = system.config

        def factory(tb: int, w: int):
            base = REGION_ARRAY + (tb * self.warps_per_tb + w) * ITEMS_PER_WARP * 64

            def program(ctx):
                # Stream the input once up front (coalesced, non-blocking),
                # then classify and bump a bin per item.  The classification
                # reads functional memory through the context -- the warp
                # program *is* the program, so data-dependent control flow
                # is ordinary Python.
                yield Instruction.load([base + i * 64 for i in range(4)], dst=1)
                for i in range(ITEMS_PER_WARP):
                    item = ctx.peek_word(base + i * 64)
                    b = (item * 2654435761) % BINS        # classify
                    yield Instruction.alu(dst=2, srcs=(1,))
                    # Reduction atomic: fire-and-forget, so throughput is
                    # bounded by the L2 bank, not the round trip.
                    yield Instruction.atomic_add(
                        self.bin_addr(ctx.sm_id, b), 1, returns_value=False, tag="bump"
                    )
                # privatized variant: merge this SM's bins into the global
                # histogram once at the end (cheap: BINS atomics per warp).
                if self.privatized and ctx.warp_index == 0:
                    for b in range(BINS):
                        yield Instruction.atomic_add(
                            REGION_COUNTERS + 0x10_0000 + b * 64, 1, tag="merge"
                        )

            return program

        # Seed the input items.
        for tb in range(self.num_tbs):
            for w in range(self.warps_per_tb):
                base = REGION_ARRAY + (tb * self.warps_per_tb + w) * ITEMS_PER_WARP * 64
                for i in range(ITEMS_PER_WARP):
                    system.memory.store_word(base + i * 64, tb * 1000 + w * 100 + i)
        return uniform_grid(self.name, self.num_tbs, self.warps_per_tb, factory)


def main() -> None:
    cfg = SystemConfig(num_sms=8)
    shared = run_workload(cfg, HistogramWorkload(privatized=False))
    private = run_workload(cfg, HistogramWorkload(privatized=True))

    print(
        format_table(
            {"shared": shared.breakdown, "privatized": private.breakdown},
            baseline="shared",
        )
    )
    speedup = shared.cycles / private.cycles
    print("privatization speedup: %.2fx" % speedup)
    print(
        "\nGSI shows why: the shared histogram serializes atomics on hot L2\n"
        "bins (memory data stalls on atomic round trips); privatization\n"
        "spreads them across lines and SMs."
    )
    shared_md = shared.breakdown.counts[StallType.MEM_DATA]
    private_md = private.breakdown.counts[StallType.MEM_DATA]
    print("memory data stalls: shared=%d privatized=%d" % (shared_md, private_md))


if __name__ == "__main__":
    main()
