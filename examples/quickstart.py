#!/usr/bin/env python3
"""Quickstart: run a kernel under GSI and read the stall breakdown.

Builds the paper's simulated system (Table 5.1 defaults: 15 SMs + 1 CPU on
a 4x4 mesh, shared NUCA L2), runs a small synthetic streaming kernel, and
prints what GSI attributes each cycle to.

Run:  python examples/quickstart.py
"""

from repro import StallType, SystemConfig, run_workload
from repro.core.report import format_stacked_bars, format_table, summarize
from repro.workloads.synthetic import PointerChaseWorkload, StreamingWorkload


def main() -> None:
    config = SystemConfig(num_sms=4)

    # --- one run, one breakdown ------------------------------------------
    result = run_workload(config, StreamingWorkload(num_tbs=4, warps_per_tb=4))
    print(summarize(result.workload, result.breakdown))
    print("  execution time: %d GPU cycles, IPC %.2f" % (result.cycles, result.ipc))
    print("  stall fractions:")
    for stall in StallType:
        frac = result.breakdown.fraction(stall)
        if frac > 0.005:
            print("    %-20s %5.1f%%" % (stall.value, 100 * frac))

    # --- comparing two workloads ------------------------------------------
    chase = run_workload(config, PointerChaseWorkload(num_tbs=4, warps_per_tb=2))
    both = {"streaming": result.breakdown, "pointer_chase": chase.breakdown}
    print()
    print(format_table(both, baseline="streaming"))
    print(format_stacked_bars(both, baseline="streaming"))

    # --- where were blocking loads serviced? -------------------------------
    print("pointer_chase memory-data stalls by service location:")
    for loc, cycles in chase.breakdown.mem_data.items():
        if cycles:
            print("  %-16s %6d cycles" % (loc.value, cycles))


if __name__ == "__main__":
    main()
